"""Multi-process data-preparation engine with zero-copy handoff.

The functional mirror of the paper's preparation server: a pool of
prep workers (the "data preparation processors") pulls shard
descriptors, runs the batched pipeline (``decode_batch`` +
``apply_batch``), and hands finished batches to the trainer through
``multiprocessing.shared_memory`` ring-buffer slots — the consumer
reads numpy views straight out of shared memory, never copying a
sample.

Determinism contract
--------------------

Sample ``i``'s RNG stream is :func:`repro.dataprep.pipeline.sample_rng`
``(seed, i)`` — keyed to the *global* sample index, not to the shard,
the worker, or the batch.  Combined with the per-op batched/scalar
bit-identity contract, this makes the engine's output a pure function
of ``(loader, pipeline, seed, batch layout)``:

* parallel == serial bit-for-bit (``num_workers=0`` runs the identical
  code path in-process, with no shared memory);
* worker count, slot count and scheduling order never change a single
  output bit — only the wall-clock.

Backpressure and prefetch
-------------------------

The ring has ``num_slots`` shared-memory slots (default two per worker:
double buffering — one slot being consumed while the next is filled).
Workers block on the free-slot queue when the consumer falls behind, so
memory stays bounded.  A yielded batch's array is a **view into its
slot** and is only valid until the next iteration, when the slot is
recycled; callers that need the data longer must copy (the trainer
consumes batches immediately, so it never does).
"""

from __future__ import annotations

import queue
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.errors import DataprepError
from repro.dataprep.pipeline import PrepPipeline, sample_rng

#: Raw-shard loader: ``loader(start, count)`` returns the raw payloads
#: (bytes blobs or an ndarray stack) for global samples
#: ``start .. start+count``.  Must be picklable for worker mode.
ShardLoader = Callable[[int, int], Any]


@dataclass(frozen=True)
class ShardSpec:
    """One unit of prep work: ``count`` consecutive samples."""

    index: int
    start: int
    count: int


@dataclass(frozen=True)
class PreparedBatch:
    """A finished batch.  ``data`` is an ``N×…`` stack; in worker mode
    it is a zero-copy view into a shared-memory slot, valid until the
    next batch is pulled from the engine."""

    index: int
    start: int
    count: int
    data: np.ndarray


def make_shards(
    num_samples: int, batch_size: int, start: int = 0
) -> List[ShardSpec]:
    """Split ``num_samples`` samples into consecutive shards of
    ``batch_size`` (the final shard may be ragged)."""
    if num_samples <= 0:
        raise DataprepError("num_samples must be positive")
    if batch_size <= 0:
        raise DataprepError("batch_size must be positive")
    shards = []
    for index, shard_start in enumerate(range(0, num_samples, batch_size)):
        count = min(batch_size, num_samples - shard_start)
        shards.append(ShardSpec(index, start + shard_start, count))
    return shards


def prepare_shard(
    pipeline: PrepPipeline,
    loader: ShardLoader,
    seed: int,
    shard: ShardSpec,
) -> np.ndarray:
    """Load and prepare one shard on the calling process.

    This is the whole per-shard computation — the serial path runs it
    inline, workers run it remotely; both produce identical bits.
    """
    raw = loader(shard.start, shard.count)
    rngs = [sample_rng(seed, shard.start + i) for i in range(shard.count)]
    with obs.span("prep.shard", cat="dataprep", shard=shard.index):
        out = pipeline.run_batch_vectorized(raw, rngs)
    if not isinstance(out, np.ndarray):
        raise DataprepError(
            f"{pipeline.name}: engine shards must prepare to a fixed-shape "
            f"stack, got ragged outputs for shard {shard.index}"
        )
    return out


def _worker_loop(
    pipeline: PrepPipeline,
    loader: ShardLoader,
    seed: int,
    segment_names: Sequence[str],
    tasks: Any,
    results: Any,
    free_slots: Any,
) -> None:
    segments = [shared_memory.SharedMemory(name=n) for n in segment_names]
    try:
        while True:
            shard = tasks.get()
            if shard is None:
                return
            try:
                out = prepare_shard(pipeline, loader, seed, shard)
                slot = free_slots.get()
                seg = segments[slot]
                if out.nbytes > seg.size:
                    raise DataprepError(
                        f"shard {shard.index} needs {out.nbytes} bytes but "
                        f"slots hold {seg.size}; raise sample_nbytes"
                    )
                dest = np.ndarray(out.shape, dtype=out.dtype, buffer=seg.buf)
                dest[...] = out  # the one batch-level copy into the ring
                results.put(
                    ("ok", shard.index, slot, out.shape, out.dtype.str)
                )
            except Exception:
                results.put(("error", shard.index, traceback.format_exc()))
                return
    finally:
        for seg in segments:
            seg.close()


class PrepEngine:
    """Batched, optionally multi-process preparation over a sample range.

    Parameters
    ----------
    pipeline, loader, num_samples, batch_size:
        What to prepare and in what shard layout.
    seed:
        Root of the per-sample RNG streams (see module docstring).
    num_workers:
        0 = serial in-process execution (no shared memory); N > 0 = a
        pool of N prep processes with shared-memory handoff.
    sample_nbytes:
        Upper bound on one *prepared* sample's bytes, used to size the
        ring slots.  Required in worker mode; derive it from
        ``pipeline.output_spec(...)`` when the input spec is known.
    num_slots:
        Ring size; default ``2 * num_workers`` (double buffering).
    """

    def __init__(
        self,
        pipeline: PrepPipeline,
        loader: ShardLoader,
        num_samples: int,
        batch_size: int,
        *,
        seed: int = 0,
        num_workers: int = 0,
        sample_nbytes: Optional[int] = None,
        num_slots: Optional[int] = None,
        start: int = 0,
        mp_context: Optional[str] = None,
    ) -> None:
        # Cleanup state first: __del__ calls close() even when the
        # validation below aborts construction.
        self._segments: List[shared_memory.SharedMemory] = []
        self._workers: List[Any] = []
        self._closed = False
        if num_workers < 0:
            raise DataprepError(f"num_workers must be >= 0: {num_workers}")
        self.pipeline = pipeline
        self.loader = loader
        self.seed = seed
        self.num_workers = num_workers
        self.shards = make_shards(num_samples, batch_size, start=start)
        if num_workers > 0:
            if sample_nbytes is None or sample_nbytes <= 0:
                raise DataprepError(
                    "worker mode needs sample_nbytes > 0 to size the "
                    "shared-memory slots"
                )
            self.slot_bytes = int(sample_nbytes) * batch_size
            self.num_slots = (
                int(num_slots) if num_slots is not None else 2 * num_workers
            )
            if self.num_slots < 2:
                raise DataprepError("the ring needs at least 2 slots")
        else:
            self.slot_bytes = 0
            self.num_slots = 0
        self._mp_context = mp_context
        self._results: Optional[Any] = None
        self._free_slots: Optional[Any] = None
        self._started = False

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "PrepEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        self.close()

    @property
    def segment_names(self) -> List[str]:
        """Names of the live shared-memory slots (for inspection)."""
        return [seg.name for seg in self._segments]

    def close(self) -> None:
        """Stop workers and release every shared-memory segment.

        Idempotent, and the engine's only exit path: it runs on normal
        completion, on errors, and on worker crashes alike, so no
        segment outlives the engine.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def _start(self) -> None:
        if self._started:
            raise DataprepError("a PrepEngine can only be iterated once")
        self._started = True
        if self.num_workers == 0:
            return
        ctx = multiprocessing.get_context(self._mp_context)
        self._segments = [
            shared_memory.SharedMemory(create=True, size=self.slot_bytes)
            for _ in range(self.num_slots)
        ]
        names = [seg.name for seg in self._segments]
        tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._free_slots = ctx.Queue()
        for slot in range(self.num_slots):
            self._free_slots.put(slot)
        for shard in self.shards:
            tasks.put(shard)
        for _ in range(self.num_workers):
            tasks.put(None)
        self._workers = [
            ctx.Process(
                target=_worker_loop,
                args=(
                    self.pipeline,
                    self.loader,
                    self.seed,
                    names,
                    tasks,
                    self._results,
                    self._free_slots,
                ),
                daemon=True,
            )
            for _ in range(self.num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- consumption --------------------------------------------------

    def batches(self) -> Iterator[PreparedBatch]:
        """Yield prepared batches in shard order (deterministic).

        In worker mode each batch's ``data`` is a zero-copy view into
        its ring slot; the slot is recycled when the next batch is
        requested.
        """
        self._start()
        try:
            if self.num_workers == 0:
                yield from self._serial_batches()
            else:
                yield from self._worker_batches()
        except BaseException:
            self.close()
            raise
        else:
            if self.num_workers > 0:
                self.close()

    def _serial_batches(self) -> Iterator[PreparedBatch]:
        for shard in self.shards:
            data = prepare_shard(self.pipeline, self.loader, self.seed, shard)
            obs.inc("prep.batches")
            obs.inc("prep.samples", shard.count)
            yield PreparedBatch(shard.index, shard.start, shard.count, data)

    def _next_result(self) -> Tuple[Any, ...]:
        assert self._results is not None
        while True:
            try:
                return self._results.get(timeout=0.5)
            except queue.Empty:
                dead = [w for w in self._workers if not w.is_alive()]
                if len(dead) == len(self._workers):
                    raise DataprepError(
                        "all prep workers exited without delivering results"
                    ) from None

    def _worker_batches(self) -> Iterator[PreparedBatch]:
        assert self._free_slots is not None
        pending = {}
        for shard in self.shards:
            # Reorder-buffer: drain results until this shard arrives.
            # Out-of-order shards wait in `pending`, parked in their
            # ring slots (backpressure caps how many that can be).
            while shard.index not in pending:
                msg = self._next_result()
                if msg[0] == "error":
                    raise DataprepError(
                        f"prep worker failed on shard {msg[1]}:\n{msg[2]}"
                    )
                pending[msg[1]] = msg[2:]
            slot, shape, dtype = pending.pop(shard.index)
            data = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._segments[slot].buf
            )
            obs.inc("prep.batches")
            obs.inc("prep.samples", shard.count)
            yield PreparedBatch(shard.index, shard.start, shard.count, data)
            # The consumer has moved on; recycle the slot.
            self._free_slots.put(slot)


def run_engine(
    pipeline: PrepPipeline,
    loader: ShardLoader,
    num_samples: int,
    batch_size: int,
    **kwargs: Any,
) -> List[np.ndarray]:
    """Prepare everything and return owned per-batch arrays (copies of
    the ring views — a convenience for tests and benchmarks; streaming
    consumers should iterate :meth:`PrepEngine.batches` instead)."""
    with PrepEngine(
        pipeline, loader, num_samples, batch_size, **kwargs
    ) as engine:
        return [batch.data.copy() for batch in engine.batches()]
