"""Multi-process data-preparation engine with zero-copy handoff.

The functional mirror of the paper's preparation server: a pool of
prep workers (the "data preparation processors") pulls shard
descriptors, runs the batched pipeline (``decode_batch`` +
``apply_batch``), and hands finished batches to the trainer through
``multiprocessing.shared_memory`` ring-buffer slots — the consumer
reads numpy views straight out of shared memory, never copying a
sample.

Determinism contract
--------------------

Sample ``i``'s RNG stream is :func:`repro.dataprep.pipeline.sample_rng`
``(seed, i)`` — keyed to the *global* sample index, not to the shard,
the worker, or the batch.  Combined with the per-op batched/scalar
bit-identity contract, this makes the engine's output a pure function
of ``(loader, pipeline, seed, batch layout)``:

* parallel == serial bit-for-bit (``num_workers=0`` runs the identical
  code path in-process, with no shared memory);
* worker count, slot count and scheduling order never change a single
  output bit — only the wall-clock;
* **failures never change a bit either**: a retried, re-dispatched or
  quarantined shard re-derives the same per-sample streams, so crash,
  hang and lost-slot recovery all deliver the fault-free bits.

Fault tolerance
---------------

At the paper's scale (256 accelerators, racks of SSDs and prep
devices) per-device failures are routine, so the engine degrades
instead of dying.  The consumer loop doubles as a supervisor: it
*assigns* ``(shard, slot, attempt)`` tuples to workers one at a time
(so it always knows which worker holds which shard and which ring
slot), and on every poll it checks worker liveness, worker heartbeats,
and per-shard deadlines.  When :class:`ResilienceConfig` is set:

* a **crashed** worker's in-flight shard is re-dispatched (capped
  exponential backoff) and the worker is respawned;
* a **hung** worker — shard deadline missed or heartbeat gone stale —
  is terminated and treated like a crash;
* a **lost completion** (slot written but never reported) hits the
  same deadline and the slot is reclaimed, because the supervisor owns
  slot accounting;
* a shard that defeats workers ``max_shard_retries`` times is
  **quarantined**: prepared in-process on the per-sample reference
  path, so one poison shard degrades throughput instead of killing the
  run;
* a **corrupt sample** (:class:`~repro.errors.CodecError`) first gets
  one clean re-read (transient bad reads heal bit-exactly), then is
  quarantined alone with a deterministic zero fill and reported, so
  one bad payload never fails its batch.

Without a :class:`ResilienceConfig` every resilience hook is a single
branch on ``None``: failures raise immediately (but a *partial* worker
crash is still detected immediately instead of livelocking — the
supervisor knows the dead worker held an in-flight shard).

Backpressure and prefetch
-------------------------

The ring has ``num_slots`` shared-memory slots (default two per worker:
double buffering — one slot being consumed while the next is filled).
The supervisor dispatches a shard only when a slot is free, and always
reserves the last free slot for the next shard the consumer needs, so
out-of-order completions can never park in every slot and deadlock the
reorder buffer.  A yielded batch's array is a **view into its slot**
and is only valid until the next iteration, when the slot is recycled;
callers that need the data longer must copy (the trainer consumes
batches immediately, so it never does).
"""

from __future__ import annotations

import bisect
import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.errors import (
    CodecError,
    DataprepError,
    PoisonShardError,
    PrepWorkerCrash,
    ReproError,
    ShardTimeoutError,
)
from repro.dataprep.chaos import ChaosSpec, wrap_loader
from repro.dataprep.pipeline import PrepPipeline, sample_rng

#: Raw-shard loader: ``loader(start, count)`` returns the raw payloads
#: (bytes blobs or an ndarray stack) for global samples
#: ``start .. start+count``.  Must be picklable for worker mode.
ShardLoader = Callable[[int, int], Any]


@dataclass(frozen=True)
class ShardSpec:
    """One unit of prep work: ``count`` consecutive samples."""

    index: int
    start: int
    count: int


@dataclass(frozen=True)
class PreparedBatch:
    """A finished batch.  ``data`` is an ``N×…`` stack; in worker mode
    it is a zero-copy view into a shared-memory slot, valid until the
    next batch is pulled from the engine (quarantined shards own their
    array).  ``quarantined`` lists in-shard indices of samples that were
    corrupt and carry the deterministic fill instead of real data."""

    index: int
    start: int
    count: int
    data: np.ndarray
    quarantined: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry/quarantine policy for worker-mode preparation.

    ``max_shard_retries`` re-dispatches per shard before it is
    quarantined to the in-process reference path; ``max_total_retries``
    is the global budget across all shards (exhausting it raises, so a
    systemically failing run terminates instead of thrashing).
    Backoff before re-dispatch is ``base · 2^(attempt-1)`` capped at
    ``backoff_cap_s``.  ``shard_timeout_s`` is the per-shard deadline;
    ``heartbeat_timeout_s`` declares a worker dead when its beat (every
    ``heartbeat_interval_s``) goes stale — 0 disables heartbeats.
    """

    max_shard_retries: int = 3
    max_total_retries: int = 64
    shard_timeout_s: float = 30.0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    heartbeat_interval_s: float = 0.2
    heartbeat_timeout_s: float = 10.0
    respawn: bool = True

    def __post_init__(self) -> None:
        if self.max_shard_retries < 0 or self.max_total_retries < 0:
            raise DataprepError("retry budgets must be >= 0")
        if self.shard_timeout_s <= 0:
            raise DataprepError("shard_timeout_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise DataprepError("backoff times must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise DataprepError("heartbeat_interval_s must be positive")


@dataclass
class ResilienceReport:
    """Exact recovery accounting for one engine run (mirrored onto the
    ``prep.*`` obs counters)."""

    retries: int = 0
    worker_crashes: int = 0
    deadline_expiries: int = 0
    respawns: int = 0
    shards_quarantined: int = 0
    samples_quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "deadline_expiries": self.deadline_expiries,
            "respawns": self.respawns,
            "shards_quarantined": self.shards_quarantined,
            "samples_quarantined": self.samples_quarantined,
        }


def make_shards(
    num_samples: int, batch_size: int, start: int = 0
) -> List[ShardSpec]:
    """Split ``num_samples`` samples into consecutive shards of
    ``batch_size`` (the final shard may be ragged)."""
    if num_samples <= 0:
        raise DataprepError("num_samples must be positive")
    if batch_size <= 0:
        raise DataprepError("batch_size must be positive")
    shards = []
    for index, shard_start in enumerate(range(0, num_samples, batch_size)):
        count = min(batch_size, num_samples - shard_start)
        shards.append(ShardSpec(index, start + shard_start, count))
    return shards


def prepare_shard(
    pipeline: PrepPipeline,
    loader: ShardLoader,
    seed: int,
    shard: ShardSpec,
) -> np.ndarray:
    """Load and prepare one shard on the calling process.

    This is the whole per-shard computation — the serial path runs it
    inline, workers run it remotely; both produce identical bits.

    Shards execute through the compiled-plan path of
    ``run_batch_vectorized``: the first shard a worker prepares compiles
    the pipeline into a :class:`~repro.dataprep.plan.PrepPlan` (reported
    as a ``prep.plan_compile`` span and metric via :mod:`repro.obs`);
    the plan is memoized per (pipeline fingerprint, geometry) through
    :mod:`repro.cache`, so every later shard of the same geometry reuses
    the compiled stages and pooled arena — one compile per worker
    process, not per shard.
    """
    raw = loader(shard.start, shard.count)
    rngs = [sample_rng(seed, shard.start + i) for i in range(shard.count)]
    with obs.span("prep.shard", cat="dataprep", shard=shard.index):
        out = pipeline.run_batch_vectorized(raw, rngs)
    if not isinstance(out, np.ndarray):
        raise DataprepError(
            f"{pipeline.name}: engine shards must prepare to a fixed-shape "
            f"stack, got ragged outputs for shard {shard.index}"
        )
    return out


def prepare_shard_salvaging(
    pipeline: PrepPipeline,
    loader: ShardLoader,
    seed: int,
    shard: ShardSpec,
    vectorized: bool = True,
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """:func:`prepare_shard` with corrupt-sample quarantine.

    On a :class:`~repro.errors.CodecError` from the batched path the
    payload is re-read once and retried (a transient bad read heals
    bit-exactly); if corruption persists, the shard falls back to the
    per-sample reference path and each corrupt sample is replaced by a
    deterministic zero fill.  Returns ``(stack, quarantined_indices)``
    — bit-identical to the fault-free path when nothing is corrupt.
    ``vectorized=False`` (the quarantine path) skips straight to the
    per-sample reference loop.
    """
    if vectorized:
        for _attempt in range(2):  # original read, then one clean re-read
            try:
                return prepare_shard(pipeline, loader, seed, shard), ()
            except CodecError:
                continue
    raw = loader(shard.start, shard.count)
    raw = list(raw) if not isinstance(raw, np.ndarray) else raw
    if len(raw) != shard.count:
        raise DataprepError(
            f"loader returned {len(raw)} payloads for shard {shard.index}, "
            f"expected {shard.count}"
        )
    outputs: List[Optional[np.ndarray]] = [None] * shard.count
    bad: List[int] = []
    for i in range(shard.count):
        rng = sample_rng(seed, shard.start + i)
        try:
            outputs[i] = pipeline.run(raw[i], rng)
        except CodecError:
            bad.append(i)
    if len(bad) == shard.count:
        raise PoisonShardError(
            f"every sample of shard {shard.index} is corrupt"
        )
    template = next(o for o in outputs if o is not None)
    if not isinstance(template, np.ndarray):
        raise DataprepError(
            f"{pipeline.name}: engine shards must prepare to a fixed-shape "
            f"stack, got ragged outputs for shard {shard.index}"
        )
    fill = np.zeros_like(template)
    stack = np.stack([o if o is not None else fill for o in outputs])
    return stack, tuple(bad)


def _heartbeat_loop(value: Any, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        value.value = time.monotonic()


def _worker_loop(
    worker_id: int,
    pipeline: PrepPipeline,
    loader: ShardLoader,
    seed: int,
    segment_names: Sequence[str],
    tasks: Any,
    results: Any,
    heartbeat: Any,
    heartbeat_interval: float,
    chaos: Optional[ChaosSpec],
    salvage: bool,
) -> None:
    stop = threading.Event()
    if heartbeat is not None:
        threading.Thread(
            target=_heartbeat_loop,
            args=(heartbeat, heartbeat_interval, stop),
            daemon=True,
        ).start()
    segments = [shared_memory.SharedMemory(name=n) for n in segment_names]
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            shard, slot, attempt = task
            try:
                if chaos is not None:
                    chaos.before_prepare(shard.index, attempt)
                if salvage:
                    out, quarantined = prepare_shard_salvaging(
                        pipeline, loader, seed, shard
                    )
                else:
                    out = prepare_shard(pipeline, loader, seed, shard)
                    quarantined = ()
                seg = segments[slot]
                if out.nbytes > seg.size:
                    raise DataprepError(
                        f"shard {shard.index} needs {out.nbytes} bytes but "
                        f"slots hold {seg.size}; raise sample_nbytes"
                    )
                dest = np.ndarray(out.shape, dtype=out.dtype, buffer=seg.buf)
                dest[...] = out  # the one batch-level copy into the ring
                if chaos is not None and chaos.drops_result(
                    shard.index, attempt
                ):
                    continue  # injected lost completion: the slot is stranded
                results.put(
                    (
                        "ok",
                        worker_id,
                        shard.index,
                        slot,
                        out.shape,
                        out.dtype.str,
                        quarantined,
                    )
                )
            except Exception as exc:
                # Attempt-scoped failures (I/O glitches, killed workers'
                # kin) are retryable; a ReproError that declares itself
                # non-retryable (bad config, poison shard) is not.
                retryable = not (
                    isinstance(exc, ReproError) and not exc.retryable
                )
                results.put(
                    (
                        "error",
                        worker_id,
                        shard.index,
                        slot,
                        traceback.format_exc(),
                        retryable,
                    )
                )
                # The shard failed; the worker itself is fine — keep
                # serving so one bad payload doesn't cost a process.
    finally:
        stop.set()
        for seg in segments:
            seg.close()


class _Worker:
    """Supervisor-side handle: process, private task queue, heartbeat,
    and the single in-flight assignment ``(shard, slot, attempt,
    deadline)`` (None when idle)."""

    __slots__ = ("wid", "proc", "tasks", "heartbeat", "assignment")

    def __init__(self, wid: int, proc: Any, tasks: Any, heartbeat: Any) -> None:
        self.wid = wid
        self.proc = proc
        self.tasks = tasks
        self.heartbeat = heartbeat
        self.assignment: Optional[Tuple[ShardSpec, int, int, Optional[float]]] = None


class PrepEngine:
    """Batched, optionally multi-process preparation over a sample range.

    Each worker process (and the serial path) prepares shards through the
    compiled-plan fast path: the pipeline compiles once per worker on the
    first shard — emitting a ``prep.plan_compile`` span/metric — and the
    plan's pooled arena is reused for every shard after, so steady-state
    batches allocate nothing (see :mod:`repro.dataprep.plan`).

    Parameters
    ----------
    pipeline, loader, num_samples, batch_size:
        What to prepare and in what shard layout.
    seed:
        Root of the per-sample RNG streams (see module docstring).
    num_workers:
        0 = serial in-process execution (no shared memory); N > 0 = a
        pool of N prep processes with shared-memory handoff.
    sample_nbytes:
        Upper bound on one *prepared* sample's bytes, used to size the
        ring slots.  Required in worker mode; derive it from
        ``pipeline.output_spec(...)`` when the input spec is known.
    num_slots:
        Ring size; default ``2 * num_workers`` (double buffering).
    resilience:
        A :class:`ResilienceConfig` enabling heartbeats, deadlines,
        retry/backoff, quarantine and corrupt-sample salvage.  ``None``
        (the default) keeps the fail-fast semantics — every hook is one
        branch, so the no-fault hot path is untouched.
    chaos:
        A :class:`~repro.dataprep.chaos.ChaosSpec` injecting
        deterministic faults (tests and the ``repro chaos`` drill);
        crash/hang/lost-result faults require worker mode, payload
        corruption also applies serially.
    """

    def __init__(
        self,
        pipeline: PrepPipeline,
        loader: ShardLoader,
        num_samples: int,
        batch_size: int,
        *,
        seed: int = 0,
        num_workers: int = 0,
        sample_nbytes: Optional[int] = None,
        num_slots: Optional[int] = None,
        start: int = 0,
        mp_context: Optional[str] = None,
        resilience: Optional[ResilienceConfig] = None,
        chaos: Optional[ChaosSpec] = None,
    ) -> None:
        # Cleanup state first: __del__ calls close() even when the
        # validation below aborts construction.
        self._segments: List[shared_memory.SharedMemory] = []
        self._live: Dict[int, _Worker] = {}
        self._results: Optional[Any] = None
        self._closed = False
        if num_workers < 0:
            raise DataprepError(f"num_workers must be >= 0: {num_workers}")
        if chaos is not None and num_workers == 0 and (
            chaos.crash or chaos.hang or chaos.lose_result
        ):
            raise DataprepError(
                "crash/hang/lost-result chaos needs worker mode; only "
                "payload corruption applies serially"
            )
        self.pipeline = pipeline
        self.loader = (
            loader if chaos is None else wrap_loader(loader, chaos, batch_size)
        )
        self.seed = seed
        self.num_workers = num_workers
        self.resilience = resilience
        self.chaos = chaos
        self.report = ResilienceReport()
        self.shards = make_shards(num_samples, batch_size, start=start)
        if num_workers > 0:
            if sample_nbytes is None or sample_nbytes <= 0:
                raise DataprepError(
                    "worker mode needs sample_nbytes > 0 to size the "
                    "shared-memory slots"
                )
            self.slot_bytes = int(sample_nbytes) * batch_size
            self.num_slots = (
                int(num_slots) if num_slots is not None else 2 * num_workers
            )
            if self.num_slots < 2:
                raise DataprepError("the ring needs at least 2 slots")
        else:
            self.slot_bytes = 0
            self.num_slots = 0
        self._mp_context = mp_context
        self._ctx: Optional[Any] = None
        self._wid_counter = itertools.count()
        self._retries_total = 0
        self._started = False

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "PrepEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        self.close()

    @property
    def segment_names(self) -> List[str]:
        """Names of the live shared-memory slots (for inspection)."""
        return [seg.name for seg in self._segments]

    def close(self) -> None:
        """Stop workers and release every shared-memory segment.

        Idempotent (safe to call repeatedly, including before
        :meth:`_start` and after a partial start failure), and the
        engine's only exit path: it runs on normal completion, on
        errors, and on worker crashes alike, so no segment or worker
        process outlives the engine.
        """
        if self._closed:
            return
        self._closed = True
        workers = list(self._live.values())
        self._live = {}
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
        for worker in workers:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - defensive
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        # Drop queue feeder threads before unlinking memory so close()
        # can never hang flushing to a dead consumer.
        for worker in workers:
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
        if self._results is not None:
            self._results.close()
            self._results.cancel_join_thread()
            self._results = None
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass

    def _spawn_worker(self) -> _Worker:
        assert self._ctx is not None
        wid = next(self._wid_counter)
        tasks = self._ctx.Queue()
        heartbeat = None
        interval = 0.0
        if self.resilience is not None and self.resilience.heartbeat_timeout_s > 0:
            heartbeat = self._ctx.Value("d", time.monotonic(), lock=False)
            interval = self.resilience.heartbeat_interval_s
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(
                wid,
                self.pipeline,
                self.loader,
                self.seed,
                [seg.name for seg in self._segments],
                tasks,
                self._results,
                heartbeat,
                interval,
                self.chaos,
                self.resilience is not None,
            ),
            daemon=True,
        )
        proc.start()
        return _Worker(wid, proc, tasks, heartbeat)

    def _start(self) -> None:
        if self._started:
            raise DataprepError("a PrepEngine can only be iterated once")
        self._started = True
        if self.num_workers == 0:
            return
        try:
            self._ctx = multiprocessing.get_context(self._mp_context)
            # Append one by one: a failure partway must leave the
            # already-created segments where close() can unlink them.
            for _ in range(self.num_slots):
                self._segments.append(
                    shared_memory.SharedMemory(
                        create=True, size=self.slot_bytes
                    )
                )
            self._results = self._ctx.Queue()
            for _ in range(self.num_workers):
                worker = self._spawn_worker()
                self._live[worker.wid] = worker
        except BaseException:
            # A failure partway through startup must not leak segments
            # or zombie workers; close() releases whatever exists.
            self.close()
            raise

    # -- consumption --------------------------------------------------

    def batches(self) -> Iterator[PreparedBatch]:
        """Yield prepared batches in shard order (deterministic).

        In worker mode each batch's ``data`` is a zero-copy view into
        its ring slot; the slot is recycled when the next batch is
        requested.
        """
        self._start()
        try:
            if self.num_workers == 0:
                yield from self._serial_batches()
            else:
                yield from self._worker_batches()
        except BaseException:
            self.close()
            raise
        else:
            if self.num_workers > 0:
                self.close()

    def _serial_batches(self) -> Iterator[PreparedBatch]:
        for shard in self.shards:
            if self.resilience is not None:
                data, quarantined = prepare_shard_salvaging(
                    self.pipeline, self.loader, self.seed, shard
                )
                self._count_quarantined(quarantined)
            else:
                data = prepare_shard(
                    self.pipeline, self.loader, self.seed, shard
                )
                quarantined = ()
            obs.inc("prep.batches")
            obs.inc("prep.samples", shard.count)
            yield PreparedBatch(
                shard.index, shard.start, shard.count, data, quarantined
            )

    def _count_quarantined(self, quarantined: Sequence[int]) -> None:
        if quarantined:
            self.report.samples_quarantined += len(quarantined)
            obs.inc("prep.samples_quarantined", len(quarantined))

    # -- the supervisor -----------------------------------------------

    def _worker_batches(self) -> Iterator[PreparedBatch]:
        # (shard, attempt, eligible_at), kept sorted by shard index so
        # the consumer's next shard is always dispatched first.
        pending: List[Tuple[ShardSpec, int, float]] = [
            (shard, 0, 0.0) for shard in self.shards
        ]
        # Reorder buffer: index -> ("slot", slot, shape, dtype, quar)
        # for ring deliveries, ("data", array, quar) for quarantined
        # shards prepared in-process.
        done: Dict[int, Tuple] = {}
        free = list(range(self.num_slots))
        for shard in self.shards:
            while shard.index not in done:
                self._dispatch(pending, free, done, shard.index)
                msg = self._poll()
                if msg is not None:
                    self._handle_message(msg, pending, free, done)
                self._check_workers(pending, free, done)
            entry = done.pop(shard.index)
            if entry[0] == "slot":
                _, slot, shape, dtype, quarantined = entry
                data = np.ndarray(
                    shape, dtype=np.dtype(dtype),
                    buffer=self._segments[slot].buf,
                )
            else:
                _, data, quarantined = entry
                slot = None
            obs.inc("prep.batches")
            obs.inc("prep.samples", shard.count)
            yield PreparedBatch(
                shard.index, shard.start, shard.count, data, quarantined
            )
            if slot is not None:
                # The consumer has moved on; recycle the slot.
                free.append(slot)

    def _poll(self) -> Optional[Tuple]:
        assert self._results is not None
        try:
            return self._results.get(timeout=0.05)
        except queue.Empty:
            return None

    def _dispatch(
        self,
        pending: List[Tuple[ShardSpec, int, float]],
        free: List[int],
        done: Dict[int, Tuple],
        lowest_index: int,
    ) -> None:
        if not pending:
            return
        if not self._live:
            # Total pool loss.  With resilience the run degrades to
            # in-process preparation; without it, it fails fast.
            if self.resilience is None:
                raise PrepWorkerCrash(
                    "all prep workers exited without delivering results"
                )
            while pending:
                shard, _, _ = pending.pop(0)
                self._quarantine(shard, done)
            return
        now = time.monotonic()
        lowest_covered = lowest_index in done or any(
            w.assignment is not None and w.assignment[0].index == lowest_index
            for w in self._live.values()
        )
        for worker in self._live.values():
            if not free or not pending:
                return
            if worker.assignment is not None:
                continue
            pick = None
            for i, (cand, _attempt, eligible) in enumerate(pending):
                if eligible > now:
                    continue  # backing off; later shards may still run
                if (
                    cand.index != lowest_index
                    and not lowest_covered
                    and len(free) <= 1
                ):
                    # Reserve the last slot for the shard the consumer
                    # is waiting on, or the reorder buffer can deadlock.
                    break
                pick = i
                break
            if pick is None:
                return
            shard, attempt, _ = pending.pop(pick)
            slot = free.pop()
            deadline = (
                now + self.resilience.shard_timeout_s
                if self.resilience is not None
                else None
            )
            worker.assignment = (shard, slot, attempt, deadline)
            worker.tasks.put((shard, slot, attempt))
            if shard.index == lowest_index:
                lowest_covered = True

    def _handle_message(
        self,
        msg: Tuple,
        pending: List[Tuple[ShardSpec, int, float]],
        free: List[int],
        done: Dict[int, Tuple],
    ) -> None:
        kind, wid, index = msg[0], msg[1], msg[2]
        worker = self._live.get(wid)
        if (
            worker is None
            or worker.assignment is None
            or worker.assignment[0].index != index
        ):
            # Stale: the worker was replaced (its slot already
            # reclaimed) or the shard was already re-dispatched.
            return
        shard, slot, attempt, _ = worker.assignment
        worker.assignment = None
        if kind == "ok":
            _, _, _, slot_msg, shape, dtype, quarantined = msg
            done[index] = ("slot", slot_msg, shape, dtype, tuple(quarantined))
            self._count_quarantined(quarantined)
        else:
            _, _, _, _, detail, retryable = msg
            free.append(slot)
            error_cls = PrepWorkerCrash if retryable else DataprepError
            self._shard_failed(
                shard, attempt, pending, done,
                retryable=retryable,
                error=error_cls(
                    f"prep worker failed on shard {index}:\n{detail}"
                ),
                detail=detail,
            )

    def _check_workers(
        self,
        pending: List[Tuple[ShardSpec, int, float]],
        free: List[int],
        done: Dict[int, Tuple],
    ) -> None:
        res = self.resilience
        now = time.monotonic()
        for wid in list(self._live):
            worker = self._live[wid]
            if worker.proc.is_alive():
                expired = (
                    worker.assignment is not None
                    and worker.assignment[3] is not None
                    and now > worker.assignment[3]
                )
                stale = (
                    worker.heartbeat is not None
                    and now - worker.heartbeat.value > res.heartbeat_timeout_s
                )
                if not expired and not stale:
                    continue
                # Hung (deadline missed) or frozen (heartbeat stale):
                # a process cannot be preempted, so replace it.
                self.report.deadline_expiries += 1
                obs.inc("prep.deadline_expiries")
                error_cls = ShardTimeoutError
                detail = (
                    "shard deadline expired" if expired
                    else "worker heartbeat went stale"
                )
                worker.proc.terminate()
            else:
                self.report.worker_crashes += 1
                obs.inc("prep.worker_crashes")
                error_cls = PrepWorkerCrash
                detail = f"worker exited with code {worker.proc.exitcode}"
            assignment = worker.assignment
            worker.assignment = None
            del self._live[wid]
            worker.proc.join(timeout=5.0)
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
            if res is not None and res.respawn:
                replacement = self._spawn_worker()
                self._live[replacement.wid] = replacement
                self.report.respawns += 1
                obs.inc("prep.respawns")
            if assignment is not None:
                shard, slot, attempt, _ = assignment
                free.append(slot)
                self._shard_failed(
                    shard, attempt, pending, done,
                    retryable=True,
                    error=error_cls(
                        f"shard {shard.index} lost on worker {wid}: {detail}"
                    ),
                    detail=detail,
                )

    def _shard_failed(
        self,
        shard: ShardSpec,
        attempt: int,
        pending: List[Tuple[ShardSpec, int, float]],
        done: Dict[int, Tuple],
        *,
        retryable: bool,
        error: DataprepError,
        detail: str,
    ) -> None:
        res = self.resilience
        if res is None or not retryable:
            raise error
        if attempt + 1 > res.max_shard_retries:
            # This shard has defeated the worker pool repeatedly:
            # stop spending workers on it and prepare it in-process.
            self._quarantine(shard, done)
            return
        self._retries_total += 1
        if self._retries_total > res.max_total_retries:
            raise type(error)(
                f"retry budget exhausted ({res.max_total_retries}) at "
                f"shard {shard.index}: {detail}"
            )
        self.report.retries += 1
        obs.inc("prep.retries")
        delay = min(
            res.backoff_base_s * (2.0 ** attempt), res.backoff_cap_s
        )
        entry = (shard, attempt + 1, time.monotonic() + delay)
        bisect.insort(pending, entry, key=lambda e: e[0].index)

    def _quarantine(self, shard: ShardSpec, done: Dict[int, Tuple]) -> None:
        """Prepare a poison shard in-process on the per-sample reference
        path (fault injection cannot follow it here: crash/hang faults
        are worker-side)."""
        self.report.shards_quarantined += 1
        obs.inc("prep.shards_quarantined")
        try:
            data, quarantined = prepare_shard_salvaging(
                self.pipeline, self.loader, self.seed, shard,
                vectorized=False,
            )
        except ReproError:
            raise
        except Exception as exc:
            raise PoisonShardError(
                f"shard {shard.index} failed in-process after exhausting "
                f"its worker retries: {exc}"
            ) from exc
        self._count_quarantined(quarantined)
        done[shard.index] = ("data", data, quarantined)


def run_engine(
    pipeline: PrepPipeline,
    loader: ShardLoader,
    num_samples: int,
    batch_size: int,
    **kwargs: Any,
) -> List[np.ndarray]:
    """Prepare everything and return owned per-batch arrays (copies of
    the ring views — a convenience for tests and benchmarks; streaming
    consumers should iterate :meth:`PrepEngine.batches` instead)."""
    with PrepEngine(
        pipeline, loader, num_samples, batch_size, **kwargs
    ) as engine:
        return [batch.data.copy() for batch in engine.batches()]
