"""Audio data-preparation operations (the Table III engine set).

Pipeline order follows Table III: spectrogram → masking → norm, with the
Mel filter bank between spectrogram and masking (SpecAugment applies
masks on the Mel representation, §VII-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep import cost as costmod
from repro.dataprep.cost import OpCost, cpu_mem_traffic
import repro.dataprep.audio.mel as melmod
import repro.dataprep.audio.stft as stftmod
from repro.dataprep.pipeline import PrepOp, SampleSpec


@dataclass
class Spectrogram(PrepOp):
    """PCM stream → power spectrogram via many small FFTs (the op class
    the paper says favors FPGAs over GPUs, §V-B)."""

    n_fft: int = stftmod.N_FFT
    win_length: int = stftmod.WIN_LENGTH
    hop_length: int = stftmod.HOP_LENGTH
    name: str = "spectrogram"
    kind: str = "spectrogram"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 1:
            raise DataprepError("spectrogram expects a 1-D PCM stream")
        signal = data.astype(np.float64)
        if data.dtype == np.int16:
            signal /= 32768.0
        return stftmod.power_spectrogram(
            signal, self.n_fft, self.win_length, self.hop_length
        ).astype(np.float32)

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        """Batched STFT for equal-length utterances: frame every signal,
        then run **one** FFT over all N×frames windows at once.  Ragged
        batches (lists) fall back to the per-sample loop."""
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 2:
            raise DataprepError("spectrogram expects an NxT PCM stack")
        signal = batch.astype(np.float64)
        if batch.dtype == np.int16:
            signal /= 32768.0
        n_batch, n = signal.shape
        frames = stftmod.num_frames(n, self.hop_length, self.win_length)
        padded_len = (frames - 1) * self.hop_length + self.win_length
        padded = np.zeros((n_batch, padded_len), dtype=np.float64)
        padded[:, :n] = signal
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, self.win_length, axis=1
        )[:, :: self.hop_length].copy()
        windows *= stftmod.hann_window(self.win_length)[None, None, :]
        spectrum = np.fft.rfft(
            windows.reshape(n_batch * frames, self.win_length),
            n=self.n_fft,
            axis=1,
        )
        power = spectrum.real**2 + spectrum.imag**2
        return power.reshape(n_batch, frames, -1).astype(np.float32)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("audio_pcm", self.name)
        n_samples = spec.shape[0]
        frames = stftmod.num_frames(n_samples, self.hop_length, self.win_length)
        bins = self.n_fft // 2 + 1
        butterflies = frames * self.n_fft * math.log2(self.n_fft)
        out_bytes = float(frames * bins * 4)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.STFT_CYCLES_PER_BUTTERFLY * butterflies,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            # The per-frame FFT working set fits in L1; only the input
            # stream and the output spectrogram reach DRAM.
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("spectrogram", (frames, bins), out_bytes)


@dataclass
class MelFilterBank(PrepOp):
    """Power spectrogram → Mel spectrogram (log-compressed)."""

    n_mels: int = melmod.N_MELS
    sample_rate: int = stftmod.SAMPLE_RATE
    log: bool = True
    name: str = "mel_filter_bank"
    kind: str = "mel"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 2:
            raise DataprepError("mel_filter_bank expects (frames x bins)")
        n_fft = (data.shape[1] - 1) * 2
        bank = melmod.mel_filter_bank(self.n_mels, n_fft, self.sample_rate)
        out = data.astype(np.float64) @ bank.T
        if self.log:
            out = np.log(out + 1e-10)
        return out.astype(np.float32)

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 3:
            raise DataprepError("mel_filter_bank expects (N x frames x bins)")
        n_fft = (batch.shape[2] - 1) * 2
        bank = melmod.mel_filter_bank(self.n_mels, n_fft, self.sample_rate)
        # Stacked matmul runs the same per-slice GEMM the scalar path
        # does, so the batch is bit-identical.
        out = batch.astype(np.float64) @ bank.T
        if self.log:
            out = np.log(out + 1e-10)
        return out.astype(np.float32)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("spectrogram", self.name)
        frames = spec.shape[0]
        out_bytes = float(frames * self.n_mels * 4)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.MEL_CYCLES_PER_BIN * frames * self.n_mels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("mel", (frames, self.n_mels), out_bytes)


@dataclass
class SpecMasking(PrepOp):
    """SpecAugment-style time and frequency masking on the Mel features."""

    max_time_mask: int = 32
    max_freq_mask: int = 16
    name: str = "masking"
    kind: str = "masking"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 2:
            raise DataprepError("masking expects (frames x mels)")
        frames, mels = data.shape
        out = data.copy()
        fill = float(data.mean())
        t = int(rng.integers(0, min(self.max_time_mask, frames) + 1))
        if t:
            t0 = int(rng.integers(0, frames - t + 1))
            out[t0 : t0 + t, :] = fill
        f = int(rng.integers(0, min(self.max_freq_mask, mels) + 1))
        if f:
            f0 = int(rng.integers(0, mels - f + 1))
            out[:, f0 : f0 + f] = fill
        return out

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 3:
            raise DataprepError("masking expects (N x frames x mels)")
        frames, mels = batch.shape[1:]
        for sample, rng in zip(batch, rngs):
            # The masks are per-sample slice writes either way; batching
            # just drops the per-sample copy by mutating the owned stack.
            fill = float(sample.mean())
            t = int(rng.integers(0, min(self.max_time_mask, frames) + 1))
            if t:
                t0 = int(rng.integers(0, frames - t + 1))
                sample[t0 : t0 + t, :] = fill
            f = int(rng.integers(0, min(self.max_freq_mask, mels) + 1))
            if f:
                f0 = int(rng.integers(0, mels - f + 1))
                sample[:, f0 : f0 + f] = fill
        return batch

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("mel", self.name)
        cells = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.MASK_CYCLES_PER_BIN * cells,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class Normalize(PrepOp):
    """Zero-mean / unit-variance normalization over the whole utterance."""

    eps: float = 1e-6
    name: str = "norm"
    kind: str = "norm"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 2:
            raise DataprepError("norm expects (frames x mels)")
        mean = data.mean()
        std = data.std()
        return ((data - mean) / (std + self.eps)).astype(np.float32)

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 3:
            raise DataprepError("norm expects (N x frames x mels)")
        # Per-sample statistics reduce over each contiguous slice exactly
        # as the scalar path does; the normalization itself is one fused
        # float64 broadcast over the stack (``data.mean()`` is a typed
        # float64 scalar, so the scalar path promotes to float64 too).
        means = np.array([sample.mean() for sample in batch])
        divisors = np.array([sample.std() for sample in batch]) + self.eps
        return (
            (batch - means[:, None, None]) / divisors[:, None, None]
        ).astype(np.float32)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("mel", self.name)
        cells = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.NORM_CYCLES_PER_BIN * cells,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class TimeWarp(PrepOp):
    """SpecAugment's time warping: stretch the features on one side of a
    random anchor frame and compress the other (linear interpolation).
    The third SpecAugment policy next to the two maskings (§VII-B cites
    the paper)."""

    max_warp: int = 16
    name: str = "time_warp"
    kind: str = "masking"

    def __post_init__(self) -> None:
        if self.max_warp < 0:
            raise DataprepError(f"max_warp must be >= 0: {self.max_warp}")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 2:
            raise DataprepError("time_warp expects (frames x mels)")
        frames = data.shape[0]
        limit = min(self.max_warp, (frames - 1) // 2)
        if limit == 0:
            return data.copy()
        anchor = int(rng.integers(limit, frames - limit))
        shift = int(rng.integers(-limit, limit + 1))
        if shift == 0:
            return data.copy()
        # Piecewise-linear remap of frame indices: [0, anchor] stretches
        # to [0, anchor+shift], the remainder compresses.
        src_positions = np.empty(frames)
        left = np.linspace(0.0, anchor, anchor + shift + 1)
        right = np.linspace(anchor, frames - 1, frames - (anchor + shift))
        src_positions[: anchor + shift + 1] = left
        src_positions[anchor + shift :] = right
        base = np.floor(src_positions).astype(int)
        base = np.clip(base, 0, frames - 2)
        frac = (src_positions - base)[:, None]
        warped = data[base] * (1.0 - frac) + data[base + 1] * frac
        return warped.astype(data.dtype)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("mel", self.name)
        cells = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            # Two reads + interpolation per cell ≈ the masking pass cost.
            cpu_cycles=costmod.MASK_CYCLES_PER_BIN * cells,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class Mfcc(PrepOp):
    """Mel-frequency cepstral coefficients: DCT-II over the log-Mel axis
    (the classic compact speech feature, selectable instead of raw Mel)."""

    n_coefficients: int = 13
    name: str = "mfcc"
    kind: str = "mel"

    def __post_init__(self) -> None:
        if self.n_coefficients <= 0:
            raise DataprepError("n_coefficients must be positive")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 2:
            raise DataprepError("mfcc expects (frames x mels)")
        mels = data.shape[1]
        if self.n_coefficients > mels:
            raise DataprepError(
                f"cannot keep {self.n_coefficients} coefficients of {mels} mels"
            )
        n = np.arange(mels)
        k = np.arange(self.n_coefficients)[:, None]
        basis = np.cos(np.pi * k * (2 * n + 1) / (2 * mels))
        basis[0] *= 1.0 / np.sqrt(2.0)
        basis *= np.sqrt(2.0 / mels)
        return (data.astype(np.float64) @ basis.T).astype(np.float32)

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 3:
            raise DataprepError("mfcc expects (N x frames x mels)")
        mels = batch.shape[2]
        if self.n_coefficients > mels:
            raise DataprepError(
                f"cannot keep {self.n_coefficients} coefficients of {mels} mels"
            )
        n = np.arange(mels)
        k = np.arange(self.n_coefficients)[:, None]
        basis = np.cos(np.pi * k * (2 * n + 1) / (2 * mels))
        basis[0] *= 1.0 / np.sqrt(2.0)
        basis *= np.sqrt(2.0 / mels)
        return (batch.astype(np.float64) @ basis.T).astype(np.float32)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("mel", self.name)
        frames, mels = spec.shape
        out_bytes = float(frames * self.n_coefficients * 4)
        macs = frames * mels * self.n_coefficients
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=4.2 * macs,  # dense matmul, same MAC cost as mel
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("mfcc", (frames, self.n_coefficients), out_bytes)


def audio_pipeline(
    n_mels: int = melmod.N_MELS,
    max_time_mask: int = 32,
    max_freq_mask: int = 16,
) -> "PrepPipeline":
    """The full Table III audio pipeline: spectrogram → mel → masking →
    norm."""
    from repro.dataprep.pipeline import PrepPipeline

    return PrepPipeline(
        [
            Spectrogram(),
            MelFilterBank(n_mels=n_mels),
            SpecMasking(max_time_mask, max_freq_mask),
            Normalize(),
        ],
        name="audio-prep",
    )
