"""Batch-level augmentations (the §VII-B emerging-techniques family).

The paper cites Takahashi et al.'s RICAP — "an efficient cropping
algorithm that randomly crops four images and merges them to create a
new training image" — as the kind of emerging augmentation TrainBox's
acceleration keeps affordable.  Unlike the per-sample ops, these combine
*multiple* samples, so they expose a batch interface and a per-output
cost.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep import cost as costmod
from repro.dataprep.cost import OpCost, cpu_mem_traffic
from repro.dataprep.pipeline import SampleSpec


class BatchOp(abc.ABC):
    """An augmentation that consumes several samples per output."""

    name: str = "batch_op"
    kind: str = "crop"
    #: samples consumed per produced output.
    arity: int = 1

    @abc.abstractmethod
    def apply(
        self, batch: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        """Produce one output from ``arity`` source samples."""

    @abc.abstractmethod
    def cost(self, spec: SampleSpec) -> OpCost:
        """Cost of producing one output from sources described by ``spec``."""


@dataclass
class Ricap(BatchOp):
    """Random Image Cropping And Patching (Takahashi et al., cited as
    [43]): one output image is a 2×2 patchwork of crops from four source
    images; the boundary point is drawn at random.

    The mixed label is the area-weighted combination of the four source
    labels; :meth:`mix_weights` returns those weights for the caller's
    loss."""

    out_height: int = 224
    out_width: int = 224
    min_fraction: float = 0.2
    name: str = "ricap"
    kind: str = "crop"
    arity: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.min_fraction <= 0.5:
            raise DataprepError("min_fraction must be in (0, 0.5]")
        self._last_weights: Tuple[float, ...] = ()

    def _boundary(self, rng: np.random.Generator) -> Tuple[int, int]:
        lo_h = int(self.out_height * self.min_fraction)
        lo_w = int(self.out_width * self.min_fraction)
        by = int(rng.integers(lo_h, self.out_height - lo_h + 1))
        bx = int(rng.integers(lo_w, self.out_width - lo_w + 1))
        return by, bx

    def apply(
        self, batch: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        if len(batch) != self.arity:
            raise DataprepError(f"ricap needs exactly {self.arity} images")
        for image in batch:
            if image.ndim != 3:
                raise DataprepError("ricap expects HxWxC images")
            if (
                image.shape[0] < self.out_height
                or image.shape[1] < self.out_width
            ):
                raise DataprepError(
                    f"source {image.shape} smaller than "
                    f"{self.out_height}x{self.out_width}"
                )
        by, bx = self._boundary(rng)
        regions = [
            (0, 0, by, bx),
            (0, bx, by, self.out_width - bx),
            (by, 0, self.out_height - by, bx),
            (by, bx, self.out_height - by, self.out_width - bx),
        ]
        channels = batch[0].shape[2]
        out = np.empty(
            (self.out_height, self.out_width, channels), dtype=batch[0].dtype
        )
        weights = []
        for image, (top, left, height, width) in zip(batch, regions):
            weights.append(
                height * width / (self.out_height * self.out_width)
            )
            if height == 0 or width == 0:
                continue
            max_top = image.shape[0] - height
            max_left = image.shape[1] - width
            src_top = int(rng.integers(0, max_top + 1))
            src_left = int(rng.integers(0, max_left + 1))
            out[top : top + height, left : left + width] = image[
                src_top : src_top + height, src_left : src_left + width
            ]
        self._last_weights = tuple(weights)
        return out

    def mix_weights(self) -> Tuple[float, ...]:
        """Area weights of the four source labels for the last output."""
        if not self._last_weights:
            raise DataprepError("call apply() before mix_weights()")
        return self._last_weights

    def cost(self, spec: SampleSpec) -> OpCost:
        spec.expect("image_u8", self.name)
        pixels = self.out_height * self.out_width
        out_bytes = float(pixels * 3)
        return OpCost(
            name=self.name,
            kind=self.kind,
            # Four strided region copies assembling one output.
            cpu_cycles=costmod.CROP_CYCLES_PER_PIXEL * pixels * 2,
            bytes_in=4 * spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(4 * spec.nbytes, out_bytes),
        )


def apply_batch_op(
    op: BatchOp,
    samples: Sequence[np.ndarray],
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Produce ``len(samples)`` outputs, each combining ``op.arity``
    randomly drawn sources (with replacement, like the RICAP recipe)."""
    if not samples:
        raise DataprepError("empty batch")
    outputs = []
    n = len(samples)
    for _ in range(n):
        chosen = [samples[int(rng.integers(0, n))] for _ in range(op.arity)]
        outputs.append(op.apply(chosen, rng))
    return outputs
