"""Functional data-preparation substrate and its cost model.

This package implements — for real, on numpy arrays — every operation the
paper offloads to its FPGA data preparation accelerators:

* the **image pipeline** of Table II: JPEG decode (our own baseline codec
  in :mod:`repro.dataprep.jpeg`), random crop, mirror, Gaussian noise and
  type cast (:mod:`repro.dataprep.ops_image`);
* the **audio pipeline** of Table III: STFT spectrogram, Mel filter bank,
  SpecAugment-style masking and normalization
  (:mod:`repro.dataprep.ops_audio`, :mod:`repro.dataprep.audio`).

Operations compose into a :class:`~repro.dataprep.pipeline.PrepPipeline`
which both *executes* (for correctness tests and the accuracy experiment
of Figure 5) and *prices itself* through the cost model in
:mod:`repro.dataprep.cost` (for the system simulator).  Keeping execution
and pricing on the same object is what grounds the simulator: the cycle
constants are calibrated once, per operation kind, and every architecture
configuration consumes them through device profiles.

Execution has two faces with a bit-identity contract between them: the
per-sample reference path (``PrepOp.apply`` / ``PrepPipeline.run``) and
the batched path (``apply_batch`` / ``run_batch``) driven by per-sample
spawned RNG streams.  :mod:`repro.dataprep.engine` scales the batched
path across worker processes with shared-memory handoff — still
bit-identical to serial execution.
"""

from repro.dataprep.cost import (
    CPU_PROFILE,
    FPGA_PROFILE,
    GPU_PROFILE,
    DeviceProfile,
    OpCost,
    PipelineCost,
    profile_by_name,
)
from repro.dataprep.chaos import ChaosSpec, corrupt_payload, wrap_loader
from repro.dataprep.engine import (
    PreparedBatch,
    PrepEngine,
    ResilienceConfig,
    ResilienceReport,
    ShardSpec,
    make_shards,
    prepare_shard,
    prepare_shard_salvaging,
    run_engine,
)
from repro.dataprep.pipeline import (
    PrepPipeline,
    SampleSpec,
    sample_rng,
    spawn_rngs,
)
from repro.dataprep.ops_image import (
    CastToFloat,
    DecodeJpeg,
    DecodePng,
    GaussianNoise,
    Mirror,
    RandomCrop,
    image_pipeline,
)
from repro.dataprep.ops_audio import (
    MelFilterBank,
    Mfcc,
    Normalize,
    SpecMasking,
    Spectrogram,
    TimeWarp,
    audio_pipeline,
)
from repro.dataprep.ops_batch import BatchOp, Ricap, apply_batch_op
from repro.dataprep.ops_video import (
    ClipCast,
    ClipCrop,
    DecodeVideo,
    TemporalSubsample,
    video_pipeline,
)

__all__ = [
    "BatchOp",
    "CPU_PROFILE",
    "CastToFloat",
    "ChaosSpec",
    "ClipCast",
    "ClipCrop",
    "DecodeJpeg",
    "DecodePng",
    "DecodeVideo",
    "DeviceProfile",
    "FPGA_PROFILE",
    "GPU_PROFILE",
    "GaussianNoise",
    "MelFilterBank",
    "Mfcc",
    "Mirror",
    "Normalize",
    "OpCost",
    "PipelineCost",
    "PrepEngine",
    "PrepPipeline",
    "PreparedBatch",
    "RandomCrop",
    "ResilienceConfig",
    "ResilienceReport",
    "Ricap",
    "SampleSpec",
    "ShardSpec",
    "SpecMasking",
    "Spectrogram",
    "TemporalSubsample",
    "TimeWarp",
    "apply_batch_op",
    "audio_pipeline",
    "corrupt_payload",
    "image_pipeline",
    "make_shards",
    "prepare_shard",
    "prepare_shard_salvaging",
    "profile_by_name",
    "run_engine",
    "wrap_loader",
    "sample_rng",
    "spawn_rngs",
    "video_pipeline",
]
