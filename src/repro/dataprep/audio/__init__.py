"""Audio feature-extraction substrate: STFT and Mel filter banks.

These are the compute kernels behind the paper's audio data preparation
(§II-A: "we convert a stream of sound into a 'Mel spectrogram', which is
the STFT-based feature set of frames in the stream").
"""

from repro.dataprep.audio.stft import frame_signal, hann_window, power_spectrogram
from repro.dataprep.audio.mel import hz_to_mel, mel_filter_bank, mel_spectrogram, mel_to_hz

# NOTE: the submodules are repro.dataprep.audio.stft / .mel; the stft()
# function itself is not re-exported here because its name would shadow
# the submodule on the package object.

__all__ = [
    "frame_signal",
    "hann_window",
    "hz_to_mel",
    "mel_filter_bank",
    "mel_spectrogram",
    "mel_to_hz",
    "power_spectrogram",
]
