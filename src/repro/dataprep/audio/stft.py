"""Short-time Fourier transform.

Default geometry follows common speech front-ends (and the paper's
Librispeech setting): 16 kHz audio, 25 ms windows (400 samples), 10 ms hop
(160 samples), 512-point FFT → 257 frequency bins per frame.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import DataprepError

SAMPLE_RATE = 16_000
WIN_LENGTH = 400
HOP_LENGTH = 160
N_FFT = 512


@functools.lru_cache(maxsize=16)
def cached_hann_window(length: int) -> np.ndarray:
    """Read-only cached Hann window — the hoisted per-batch invariant
    compiled prep plans (and :func:`stft`) multiply frames by."""
    window = hann_window(length)
    window.setflags(write=False)
    return window


def hann_window(length: int) -> np.ndarray:
    """Periodic Hann window."""
    if length <= 0:
        raise DataprepError(f"window length must be positive: {length}")
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * n / length)


def frame_signal(
    signal: np.ndarray, win_length: int = WIN_LENGTH, hop_length: int = HOP_LENGTH
) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames (n_frames × win_length).

    The tail that does not fill a full window is zero-padded, so every
    sample contributes to at least one frame.
    """
    if signal.ndim != 1:
        raise DataprepError(f"expected 1-D signal, got shape {signal.shape}")
    if hop_length <= 0 or win_length <= 0:
        raise DataprepError("win_length and hop_length must be positive")
    n = signal.shape[0]
    if n == 0:
        raise DataprepError("cannot frame an empty signal")
    n_frames = max(1, 1 + (n - 1) // hop_length) if n < win_length else (
        1 + (n - win_length + hop_length - 1) // hop_length
    )
    padded_len = (n_frames - 1) * hop_length + win_length
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[:n] = signal
    # Stride-tricks framing: every hop_length-th window of the padded
    # signal, materialized as one contiguous copy (the view itself is
    # read-only and would alias ``padded``; .copy() guarantees an owned,
    # writable array even when the strided slice is already contiguous,
    # where ascontiguousarray would pass the read-only view through).
    windows = np.lib.stride_tricks.sliding_window_view(padded, win_length)
    return windows[::hop_length].copy()


def num_frames(n_samples: int, hop_length: int = HOP_LENGTH, win_length: int = WIN_LENGTH) -> int:
    """Frame count :func:`frame_signal` produces for an n-sample signal."""
    if n_samples <= 0:
        raise DataprepError("signal length must be positive")
    if n_samples < win_length:
        return max(1, 1 + (n_samples - 1) // hop_length)
    return 1 + (n_samples - win_length + hop_length - 1) // hop_length


def stft(
    signal: np.ndarray,
    n_fft: int = N_FFT,
    win_length: int = WIN_LENGTH,
    hop_length: int = HOP_LENGTH,
) -> np.ndarray:
    """Complex STFT: (n_frames × (n_fft/2 + 1))."""
    if n_fft < win_length:
        raise DataprepError(f"n_fft ({n_fft}) must be >= win_length ({win_length})")
    frames = frame_signal(signal, win_length, hop_length)
    # frame_signal returns an owned copy, so window in place and run one
    # batched FFT over the frame axis.
    frames *= cached_hann_window(win_length)[None, :]
    return np.fft.rfft(frames, n=n_fft, axis=1)


def stft_reference(
    signal: np.ndarray,
    n_fft: int = N_FFT,
    win_length: int = WIN_LENGTH,
    hop_length: int = HOP_LENGTH,
) -> np.ndarray:
    """Frame-at-a-time STFT — the executable spec :func:`stft` is pinned
    to by a golden test."""
    if n_fft < win_length:
        raise DataprepError(f"n_fft ({n_fft}) must be >= win_length ({win_length})")
    frames = frame_signal(signal, win_length, hop_length)
    window = hann_window(win_length)
    out = np.empty((frames.shape[0], n_fft // 2 + 1), dtype=np.complex128)
    for i in range(frames.shape[0]):
        out[i] = np.fft.rfft(frames[i] * window, n=n_fft)
    return out


def power_spectrogram(
    signal: np.ndarray,
    n_fft: int = N_FFT,
    win_length: int = WIN_LENGTH,
    hop_length: int = HOP_LENGTH,
) -> np.ndarray:
    """|STFT|² power, (n_frames × (n_fft/2 + 1)), float64."""
    spectrum = stft(signal, n_fft, win_length, hop_length)
    return (spectrum.real**2 + spectrum.imag**2)
