"""Mel filter banks and Mel spectrograms (Slaney-style triangular filters)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import DataprepError
from repro.dataprep.audio.stft import (
    HOP_LENGTH,
    N_FFT,
    SAMPLE_RATE,
    WIN_LENGTH,
    power_spectrogram,
)

N_MELS = 128


def hz_to_mel(hz):
    """HTK mel scale."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel):
    """Inverse of :func:`hz_to_mel`."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def mel_filter_bank(
    n_mels: int = N_MELS,
    n_fft: int = N_FFT,
    sample_rate: int = SAMPLE_RATE,
    fmin: float = 0.0,
    fmax: float = None,
) -> np.ndarray:
    """Triangular mel filter bank, shape (n_mels × (n_fft/2 + 1)).

    Each row is a triangle in frequency; rows overlap so every FFT bin in
    [fmin, fmax] contributes to at least one mel bin (a property the tests
    check).
    """
    return _cached_bank(n_mels, n_fft, sample_rate, float(fmin), fmax).copy()


@lru_cache(maxsize=16)
def _cached_bank(
    n_mels: int, n_fft: int, sample_rate: int, fmin: float, fmax
) -> np.ndarray:
    """Shared read-only bank; geometries repeat across a whole dataset,
    so the triangles are built once per geometry, not once per clip."""
    if n_mels <= 0:
        raise DataprepError(f"n_mels must be positive: {n_mels}")
    if fmax is None:
        fmax = sample_rate / 2.0
    if not 0 <= fmin < fmax <= sample_rate / 2.0:
        raise DataprepError(f"invalid band [{fmin}, {fmax}] for sr={sample_rate}")
    n_bins = n_fft // 2 + 1
    fft_freqs = np.linspace(0.0, sample_rate / 2.0, n_bins)
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), n_mels + 2)
    hz_points = mel_to_hz(mel_points)

    # All triangles at once: row m rises over [hz[m], hz[m+1]] and falls
    # over [hz[m+1], hz[m+2]].
    left = hz_points[:-2, None]
    center = hz_points[1:-1, None]
    right = hz_points[2:, None]
    up = (fft_freqs[None, :] - left) / np.maximum(center - left, 1e-12)
    down = (right - fft_freqs[None, :]) / np.maximum(right - center, 1e-12)
    bank = np.maximum(0.0, np.minimum(up, down))
    bank.setflags(write=False)
    return bank


def mel_filter_bank_reference(
    n_mels: int = N_MELS,
    n_fft: int = N_FFT,
    sample_rate: int = SAMPLE_RATE,
    fmin: float = 0.0,
    fmax: float = None,
) -> np.ndarray:
    """Triangle-at-a-time bank construction — the executable spec the
    vectorized/cached build is pinned to by a golden test."""
    if n_mels <= 0:
        raise DataprepError(f"n_mels must be positive: {n_mels}")
    if fmax is None:
        fmax = sample_rate / 2.0
    if not 0 <= fmin < fmax <= sample_rate / 2.0:
        raise DataprepError(f"invalid band [{fmin}, {fmax}] for sr={sample_rate}")
    n_bins = n_fft // 2 + 1
    fft_freqs = np.linspace(0.0, sample_rate / 2.0, n_bins)
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), n_mels + 2)
    hz_points = mel_to_hz(mel_points)

    bank = np.zeros((n_mels, n_bins))
    for m in range(n_mels):
        left, center, right = hz_points[m], hz_points[m + 1], hz_points[m + 2]
        up = (fft_freqs - left) / max(center - left, 1e-12)
        down = (right - fft_freqs) / max(right - center, 1e-12)
        bank[m] = np.maximum(0.0, np.minimum(up, down))
    return bank


@lru_cache(maxsize=16)
def _cached_bank_t(
    n_mels: int, n_fft: int, sample_rate: int
) -> np.ndarray:
    """Contiguous read-only transpose for the spectrogram matmul."""
    bank_t = np.ascontiguousarray(
        _cached_bank(n_mels, n_fft, sample_rate, 0.0, None).T
    )
    bank_t.setflags(write=False)
    return bank_t


def mel_spectrogram(
    signal: np.ndarray,
    n_mels: int = N_MELS,
    n_fft: int = N_FFT,
    win_length: int = WIN_LENGTH,
    hop_length: int = HOP_LENGTH,
    sample_rate: int = SAMPLE_RATE,
    log: bool = True,
    eps: float = 1e-10,
) -> np.ndarray:
    """Mel (log-)spectrogram of a 1-D signal: (n_frames × n_mels) float32."""
    power = power_spectrogram(signal, n_fft, win_length, hop_length)
    mel = power @ _cached_bank_t(n_mels, n_fft, sample_rate)
    if log:
        mel = np.log(mel + eps)
    return mel.astype(np.float32)
