"""The paper's contribution: the TrainBox server architecture simulator.

The package stacks the substrates into the evaluation the paper runs:

* :mod:`repro.core.config` — hardware constants and the architecture
  configurations of Figure 19 (Baseline, B+Acc, B+Acc+P2P, +Gen4,
  TrainBox) plus the GPU-prep and no-pool variants of Figure 21;
* :mod:`repro.core.server` — PCIe topology builders for every
  configuration (type-grouped boxes chained from the RC for the baseline
  family, clustered train boxes for TrainBox);
* :mod:`repro.core.dataflow` — per-architecture datapaths translated into
  per-sample resource demands (CPU cycles, memory bytes, PCIe flows,
  prep-device cycles, Ethernet flows);
* :mod:`repro.core.analytical` — the steady-state throughput solver
  (training is throughput-oriented and pipelined, §VI-A, so capacity
  analysis is the paper's own methodology);
* :mod:`repro.core.des` — a batch-level discrete-event simulator that
  cross-validates the analytical engine's pipeline-overlap law;
* :mod:`repro.core.initializer` — the train initializer of §V-A
  (prep-demand estimation, prep-pool sizing, data sharding);
* :mod:`repro.core.resources` — host-resource accounting behind
  Figures 9, 10, 11 and 22.
"""

from repro.core.config import (
    Architecture,
    ArchitectureConfig,
    HardwareConfig,
    PrepDevice,
    SyncStrategy,
)
from repro.core.server import ServerModel, build_server
from repro.core.dataflow import DataflowDemand, build_demand
from repro.core.analytical import TrainingScenario, simulate
from repro.core.des import simulate_des
from repro.core.autotune import AutotuneResult, autotune
from repro.core.faults import FaultSet, drain_box, inject_faults
from repro.core.inference import InferenceScenario, simulate_inference
from repro.core.initializer import TrainInitializer, TrainPlan
from repro.core.rack import JobPlacement, JobRequest, TrainBoxRack
from repro.core.scaleout import ScaleOutConfig, simulate_scaleout
from repro.core.session import TrainingSession
from repro.core.resources import (
    host_requirements,
    latency_decomposition,
    resource_breakdown,
)
from repro.core.results import (
    HostRequirements,
    LatencyDecomposition,
    SimulationResult,
)

__all__ = [
    "Architecture",
    "ArchitectureConfig",
    "AutotuneResult",
    "DataflowDemand",
    "FaultSet",
    "HardwareConfig",
    "HostRequirements",
    "InferenceScenario",
    "JobPlacement",
    "JobRequest",
    "LatencyDecomposition",
    "PrepDevice",
    "ServerModel",
    "ScaleOutConfig",
    "SimulationResult",
    "SyncStrategy",
    "TrainBoxRack",
    "TrainingSession",
    "TrainInitializer",
    "TrainPlan",
    "TrainingScenario",
    "autotune",
    "build_demand",
    "build_server",
    "drain_box",
    "host_requirements",
    "inject_faults",
    "latency_decomposition",
    "resource_breakdown",
    "simulate",
    "simulate_des",
    "simulate_inference",
    "simulate_scaleout",
]
