"""Batch-level discrete-event simulation of the training pipeline.

The analytical solver applies the steady-state overlap law
``throughput = min(prep, consume)``.  This module *simulates* the
pipeline batch by batch instead — preparation stations in tandem with
finite inter-stage buffers (double/quadruple buffering), the delivery
buffer next-batch prefetch provides, and the global iteration barrier of
synchronous data-parallel training — and measures throughput from event
times.  With deterministic service times the two engines must agree
closely (a test pins this); with service-time jitter enabled the DES
demonstrates the paper's §VI-A claim that latency variation barely moves
throughput thanks to pipelining.

Event times follow the standard recursion for tandem queues with
blocking-after-service: batch ``k`` departs station ``i`` at

    D[i][k] = max(arrival, own previous departure, space downstream) + S

which is an exact event-driven solution for FIFO deterministic networks.

Two solvers implement the recursion:

* :func:`run_pipeline_reference` — the batch-at-a-time scalar loop, the
  executable spec.  It handles jitter and trace recording.
* a **vectorized** solver used automatically for deterministic runs —
  numpy over the whole batch axis, one station at a time.  Each
  station's recursion ``F[k] = max(A[k], F[k - s]) + S`` is a max-plus
  prefix scan solved in ``O(log)`` doubling passes
  (``F[k] = max_t A[k - t·s] + (t+1)·S``).  Inter-station blocking can
  be dropped there because with deterministic service it never moves the
  last station's departures: a blocked batch is released exactly when
  the downstream slot frees, which is never earlier than the downstream
  server it would wait for anyway (the classical finite-buffer
  invariance for deterministic tandem lines).  The delivery-buffer
  barrier *is* kept exactly: the last station is solved one iteration at
  a time, where its block term — ``iter_start`` of ``B + 1`` iterations
  ago — is already known.  A golden test pins the vectorized solver to
  the scalar reference across bottleneck positions, multi-server
  stations, buffer depths and scales.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigError, SimulationError
from repro.core.analytical import (
    TrainingScenario,
    make_sync_model,
    prep_capacity_cached,
)
from repro.core.config import HardwareConfig
from repro.core.dataflow import build_demand_cached
from repro.core.results import SimulationOutcome
from repro.core.server import ServerModel, build_server


@dataclass(frozen=True)
class Station:
    """One preparation stage.

    ``rate`` is the samples/second of **one server**; ``servers`` batches
    can be in service concurrently (an FPGA array prepares one batch per
    device at device speed, not one batch at the aggregate rate).  The
    default ``servers=1`` models a perfectly shared stage at the
    aggregate rate — equivalent in steady state, optimistic on latency.
    """

    name: str
    rate: float  # samples/second per server
    servers: int = 1

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ConfigError(f"station {self.name} needs >= 1 server")

    @property
    def aggregate_rate(self) -> float:
        return self.rate * self.servers

    def service_time(self, batch_size: int) -> float:
        if self.rate <= 0:
            raise ConfigError(f"station {self.name} has non-positive rate")
        return batch_size / self.rate


@dataclass(frozen=True)
class TraceEvent:
    """One busy interval in the simulated pipeline.

    ``kind`` is ``"station"`` (a batch in service at a prep stage) or
    ``"iteration"`` (the global compute+sync barrier); ``index`` is the
    batch or iteration number.
    """

    kind: str
    name: str
    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DesResult(SimulationOutcome):
    """Measured outcome of one DES run.

    Shares the :class:`~repro.core.results.SimulationOutcome` interface
    with the other engines: ``throughput``/``prep_rate``/``consume_rate``
    /``bottleneck`` plus the derived ``prep_bound``/``iteration_time``/
    ``speedup_over``.  ``resource_utilization`` maps each station to its
    measured busy fraction.
    """

    throughput: float
    iterations: int
    makespan: float
    resource_utilization: Dict[str, float]
    stations: tuple
    trace: Optional[tuple] = None

    workload_name: str = ""
    arch_name: str = ""
    n_accelerators: int = 0
    batch_size: int = 0
    prep_rate: float = math.inf
    consume_rate: float = 0.0
    bottleneck: str = ""

    def relative_error(self, analytical_throughput: float) -> float:
        if analytical_throughput <= 0:
            raise SimulationError(
                f"reference throughput must be positive for {self.scenario_id()}"
            )
        return abs(self.throughput - analytical_throughput) / analytical_throughput

    def stall_time(self, station_name: str) -> float:
        """Total time the named station sat idle while the pipeline ran
        (requires a recorded trace)."""
        if self.trace is None:
            raise SimulationError("run with record_trace=True to analyze stalls")
        busy = sum(
            e.duration
            for e in self.trace
            if e.kind == "station" and e.name == station_name
        )
        return self.makespan - busy

    def to_dict(self) -> Dict:
        """JSON-encodable form for the persistent result cache.

        Traces are transient diagnostics and are not cached; stations
        round-trip as (name, rate, servers) rows.
        """
        return {
            "throughput": self.throughput,
            "iterations": self.iterations,
            "makespan": self.makespan,
            "resource_utilization": dict(self.resource_utilization),
            "stations": [
                [s.name, s.rate, s.servers] for s in self.stations
            ],
            "workload_name": self.workload_name,
            "arch_name": self.arch_name,
            "n_accelerators": self.n_accelerators,
            "batch_size": self.batch_size,
            "prep_rate": self.prep_rate,
            "consume_rate": self.consume_rate,
            "bottleneck": self.bottleneck,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DesResult":
        return cls(
            throughput=data["throughput"],
            iterations=data["iterations"],
            makespan=data["makespan"],
            resource_utilization=dict(data["resource_utilization"]),
            stations=tuple(
                Station(name, rate, servers=servers)
                for name, rate, servers in data["stations"]
            ),
            trace=None,
            workload_name=data.get("workload_name", ""),
            arch_name=data.get("arch_name", ""),
            n_accelerators=data.get("n_accelerators", 0),
            batch_size=data.get("batch_size", 0),
            prep_rate=data.get("prep_rate", math.inf),
            consume_rate=data.get("consume_rate", 0.0),
            bottleneck=data.get("bottleneck", ""),
        )


def _stations_from_rates(
    rates: Dict[str, float], server_counts: Optional[Dict[str, int]] = None
) -> List[Station]:
    """Preparation stations in physical order, finite-rate only.

    ``server_counts`` splits a stage's aggregate rate across that many
    parallel servers (device-granular service, same steady throughput).
    """
    order = [
        "ssd",
        "host_cpu",
        "prep_compute",
        "prep_network",
        "host_memory",
        "pcie",
        "accelerator_ingest",
    ]
    server_counts = server_counts or {}
    stations = []
    for name in order:
        rate = rates.get(name, math.inf)
        if math.isfinite(rate):
            servers = max(1, server_counts.get(name, 1))
            stations.append(Station(name, rate / servers, servers=servers))
    if not stations:
        # Nothing binds preparation; a single infinite-speed stage keeps
        # the recursion trivial.
        stations.append(Station("prep", 1e18))
    return stations


def _normalized_fields(
    stations: Sequence[Station],
    n_accelerators: int,
    batch_size: int,
    iteration_time: float,
) -> Dict[str, object]:
    """The SimulationOutcome fields both solvers derive identically.

    ``prep_rate`` is the slowest station's aggregate rate (the tandem
    line's steady capacity), ``consume_rate`` the iteration barrier's
    demand; ``bottleneck`` names whichever binds, exactly mirroring the
    analytical engine's convention.
    """
    slowest = min(stations, key=lambda s: s.aggregate_rate)
    prep_rate = slowest.aggregate_rate
    consume_rate = (
        n_accelerators * batch_size / iteration_time
        if iteration_time > 0
        else math.inf
    )
    bottleneck = slowest.name if prep_rate < consume_rate else "accelerator"
    return {
        "n_accelerators": n_accelerators,
        "batch_size": batch_size,
        "prep_rate": prep_rate,
        "consume_rate": consume_rate,
        "bottleneck": bottleneck,
    }


def _throughput_from_finish(
    iter_finish: Sequence[float],
    iterations: int,
    n_accelerators: int,
    batch_size: int,
) -> float:
    """Steady throughput over the post-warmup window (shared by both
    solvers so they agree on the measurement, not just the event times)."""
    makespan = iter_finish[-1]
    # Skip the pipeline-fill warmup when measuring steady throughput.
    warmup = min(iterations // 5, iterations - 1)
    window = iter_finish[-1] - iter_finish[warmup]
    done = iterations - 1 - warmup
    if done <= 0 or window <= 0:
        return iterations * n_accelerators * batch_size / makespan
    return done * n_accelerators * batch_size / window


def run_pipeline_reference(
    stations: Sequence[Station],
    n_accelerators: int,
    batch_size: int,
    iteration_time: float,
    iterations: int,
    buffer_batches: int = 4,
    jitter: float = 0.0,
    seed: int = 0,
    record_trace: bool = False,
) -> DesResult:
    """The scalar batch-at-a-time solver — the executable specification.

    Handles service-time jitter and trace recording; the vectorized
    solver is pinned to this one by a golden test.
    """
    if iterations <= 0:
        raise ConfigError("iterations must be positive")
    if buffer_batches < 1:
        raise ConfigError("need at least one buffer slot between stages")
    n_batches = iterations * n_accelerators
    rng = np.random.default_rng(seed)

    def sample_service(base: float) -> float:
        if jitter <= 0:
            return base
        sigma = math.sqrt(math.log(1 + jitter**2))
        return base * rng.lognormal(-(sigma**2) / 2, sigma)

    m = len(stations)
    # depart[i][k] = time batch k leaves stage i (service done AND a
    # downstream slot was free — blocking after service).
    depart = [[0.0] * n_batches for _ in range(m)]
    busy = [0.0] * m
    trace: List[TraceEvent] = [] if record_trace else None  # type: ignore[assignment]

    iter_start = [0.0] * iterations
    iter_finish = [0.0] * iterations

    for k in range(n_batches):
        for i, station in enumerate(stations):
            arrival = depart[i - 1][k] if i > 0 else 0.0
            # A server frees when batch k - servers *departs* this stage
            # (a blocked batch keeps occupying its server).
            server_free = (
                depart[i][k - station.servers]
                if k - station.servers >= 0
                else 0.0
            )
            service = sample_service(station.service_time(batch_size))
            start = max(arrival, server_free)
            finish = start + service
            # Blocking after service: the batch holds its server until a
            # downstream slot frees — i.e. until batch k - B - S_next has
            # departed stage i+1 (B buffer slots + S_next in service).
            block = 0.0
            if i + 1 < m:
                j = k - buffer_batches - stations[i + 1].servers
                if j >= 0:
                    block = depart[i + 1][j]
            else:
                # Delivery buffer: next-batch prefetch holds a few global
                # batches ahead of the consumers.
                j = k // n_accelerators - buffer_batches - 1
                if j >= 0:
                    block = iter_start[j]
            depart[i][k] = max(finish, block)
            busy[i] += service
            if trace is not None:
                trace.append(
                    TraceEvent("station", station.name, k, start, finish)
                )
        # Iteration barrier.
        j = k // n_accelerators
        if (k + 1) % n_accelerators == 0:
            ready = depart[m - 1][k]
            prev_finish = iter_finish[j - 1] if j > 0 else 0.0
            iter_start[j] = max(ready, prev_finish)
            iter_finish[j] = iter_start[j] + sample_service(iteration_time)
            if trace is not None:
                trace.append(
                    TraceEvent(
                        "iteration", "compute+sync", j, iter_start[j], iter_finish[j]
                    )
                )

    makespan = iter_finish[-1]
    throughput = _throughput_from_finish(
        iter_finish, iterations, n_accelerators, batch_size
    )
    utilization = {
        s.name: busy[i] / (makespan * s.servers) for i, s in enumerate(stations)
    }
    return DesResult(
        throughput=throughput,
        iterations=iterations,
        makespan=makespan,
        resource_utilization=utilization,
        stations=tuple(stations),
        trace=tuple(trace) if trace is not None else None,
        **_normalized_fields(stations, n_accelerators, batch_size, iteration_time),
    )


def _maxplus_scan(init: np.ndarray, shift: int, step: float) -> np.ndarray:
    """Solve ``out[k] = max(init[k], out[k - shift] + step)`` in place.

    Unrolled, the recursion is ``out[k] = max_t init[k - t·shift] + t·step``
    — a max-plus prefix scan along stride ``shift``.  Doubling both the
    span and the accumulated step covers all ``t`` in ``O(log)`` passes.
    """
    out = init
    span = shift
    add = step
    while span < len(out):
        np.maximum(out[span:], out[:-span] + add, out=out[span:])
        span *= 2
        add *= 2
    return out


def _run_pipeline_vectorized(
    stations: Sequence[Station],
    n_accelerators: int,
    batch_size: int,
    iteration_time: float,
    iterations: int,
    buffer_batches: int = 4,
) -> DesResult:
    """Deterministic solver, vectorized over the batch axis per station.

    Stations before the last run feed-forward: each applies the scan
    ``D[k] = max(A[k], D[k - servers]) + S``.  Dropping the
    blocking-after-service term is exact for last-station departures with
    deterministic service (see the module docstring).  The last station
    keeps its delivery-buffer block, solved one iteration at a time where
    the block — ``iter_start`` of ``buffer_batches + 1`` iterations ago —
    is already known; the previous iteration's last ``servers``
    departures are carried as a prefix so the scan crosses the chunk
    boundary correctly.
    """
    if iterations <= 0:
        raise ConfigError("iterations must be positive")
    if buffer_batches < 1:
        raise ConfigError("need at least one buffer slot between stages")
    m = len(stations)
    n = n_accelerators
    n_batches = iterations * n
    services = [st.service_time(batch_size) for st in stations]

    arrival = np.zeros(n_batches)
    for i in range(m - 1):
        arrival += services[i]
        arrival = _maxplus_scan(arrival, stations[i].servers, services[i])

    s = stations[m - 1].servers
    service = services[m - 1]
    iter_start = np.zeros(iterations)
    iter_finish = np.zeros(iterations)
    # Last `s` departures of the previous chunk, oldest first.  -inf means
    # "server never used": arrivals are non-negative, so the max with the
    # missing predecessor is a no-op, matching the scalar's 0.0 default.
    depart_tail = np.full(s, -math.inf)
    prev_finish = 0.0
    for j in range(iterations):
        lo = j * n
        blocked = np.maximum(arrival[lo : lo + n] + service, 0.0)
        jb = j - buffer_batches - 1
        if jb >= 0:
            np.maximum(blocked, iter_start[jb], out=blocked)
        work = np.concatenate([depart_tail, blocked])
        span = s
        add = service
        while span < len(work):
            np.maximum(work[span:], work[:-span] + add, out=work[span:])
            span *= 2
            add *= 2
        depart_tail = work[-s:].copy()
        iter_start[j] = max(work[-1], prev_finish)
        prev_finish = iter_finish[j] = iter_start[j] + iteration_time

    makespan = float(iter_finish[-1])
    throughput = _throughput_from_finish(
        iter_finish, iterations, n, batch_size
    )
    # Deterministic service: every batch costs exactly its service time,
    # so busy time is n_batches · S per station — same sum the scalar
    # solver accumulates.
    utilization = {
        st.name: n_batches * services[i] / (makespan * st.servers)
        for i, st in enumerate(stations)
    }
    return DesResult(
        throughput=float(throughput),
        iterations=iterations,
        makespan=makespan,
        resource_utilization=utilization,
        stations=tuple(stations),
        trace=None,
        **_normalized_fields(stations, n_accelerators, batch_size, iteration_time),
    )


def run_pipeline(
    stations: Sequence[Station],
    n_accelerators: int,
    batch_size: int,
    iteration_time: float,
    iterations: int,
    buffer_batches: int = 4,
    jitter: float = 0.0,
    seed: int = 0,
    record_trace: bool = False,
) -> DesResult:
    """Simulate ``iterations`` synchronous iterations.

    Per-accelerator batches flow through the tandem stations; iteration
    ``j`` starts once all its ``n`` batches are delivered and iteration
    ``j-1`` finished, then takes ``iteration_time`` (compute + sync).
    ``jitter`` multiplies every service time by a lognormal factor with
    the given coefficient of variation.

    Deterministic runs without trace recording dispatch to the
    vectorized solver; jitter (whose RNG draw order is defined by the
    scalar loop) and tracing use :func:`run_pipeline_reference`.
    """
    obs.inc("engine.des.runs")
    obs.inc("engine.des.batches", iterations * n_accelerators)
    with obs.span(
        "des.run_pipeline", cat="engine",
        stations=len(stations), iterations=iterations,
    ):
        if jitter <= 0 and not record_trace:
            result = _run_pipeline_vectorized(
                stations,
                n_accelerators,
                batch_size,
                iteration_time,
                iterations,
                buffer_batches=buffer_batches,
            )
        else:
            result = run_pipeline_reference(
                stations,
                n_accelerators,
                batch_size,
                iteration_time,
                iterations,
                buffer_batches=buffer_batches,
                jitter=jitter,
                seed=seed,
                record_trace=record_trace,
            )
    obs.observe("engine.des.throughput", result.throughput)
    return result


def simulate_des(
    scenario: TrainingScenario,
    server: Optional[ServerModel] = None,
    iterations: int = 60,
    buffer_batches: int = 4,
    jitter: float = 0.0,
    seed: int = 0,
    record_trace: bool = False,
) -> DesResult:
    """Build the scenario's server and run the batch-level DES."""
    hw = scenario.hw or HardwareConfig()
    if server is None:
        with obs.span("des.build_server", cat="engine"):
            server = build_server(
                scenario.arch,
                scenario.n_accelerators,
                hw=hw,
                pool_size=scenario.pool_size,
            )
    with obs.span("des.price_demand", cat="engine"):
        demand = build_demand_cached(server, scenario.workload)
        _, rates = prep_capacity_cached(server, scenario.workload)
    # Device-granular service where the stage is an array of devices.
    counts = {
        "prep_compute": demand.n_prep_devices + demand.n_pool_devices,
        "ssd": len(server.ssd_ids),
        "accelerator_ingest": server.n_accelerators,
    }
    stations = _stations_from_rates(rates, server_counts=counts)

    batch = scenario.batch_size or scenario.workload.batch_size
    if scenario.accelerator == "tpu":
        spec = scenario.workload.accelerator_spec()
    else:
        spec = scenario.workload.legacy_accelerator_spec()
    sync_model = make_sync_model(
        scenario.arch.sync,
        scenario.fabric_bandwidth or hw.accelerator_fabric_bandwidth,
    )
    iteration_time = spec.compute_time(batch) + sync_model.time(
        scenario.n_accelerators, scenario.workload.model_bytes
    )
    # Stations serve per-accelerator batches; their rates are aggregate,
    # which the station abstraction already captures (one batch in
    # service at a time at the aggregate rate ≡ perfectly shared stage).
    result = run_pipeline(
        stations,
        scenario.n_accelerators,
        batch,
        iteration_time,
        iterations,
        buffer_batches=buffer_batches,
        jitter=jitter,
        seed=seed,
        record_trace=record_trace,
    )
    result = dataclasses.replace(
        result,
        workload_name=scenario.workload.name,
        arch_name=scenario.arch.name,
    )
    tracer = obs.current_tracer()
    if tracer is not None and result.trace is not None:
        _emit_model_trace(tracer, result)
    return result


def simulate_des_schedule(
    scenario: TrainingScenario,
    schedule,
    horizon: float,
    iterations: int = 60,
    buffer_batches: int = 4,
):
    """Price a :class:`~repro.core.faults.FaultSchedule` with the DES:
    a piecewise degraded-throughput timeline where each constant-fault
    window is one batch-level simulation of the degraded server.

    Accelerator faults shrink the job for their window (the scenario is
    re-scaled to the surviving device count); FPGA loss is absorbed by
    the prep pool and SSD loss halves the box's read bandwidth, per the
    operational rules the capacity model already encodes.
    """
    from repro.core.faults import price_schedule

    hw = scenario.hw or HardwareConfig()
    server = build_server(
        scenario.arch,
        scenario.n_accelerators,
        hw=hw,
        pool_size=scenario.pool_size,
    )

    def runner(degraded: ServerModel) -> DesResult:
        window_scenario = dataclasses.replace(
            scenario, n_accelerators=degraded.n_accelerators
        )
        return simulate_des(
            window_scenario,
            server=degraded,
            iterations=iterations,
            buffer_batches=buffer_batches,
        )

    with obs.span("des.price_schedule", cat="engine", events=len(schedule)):
        return price_schedule(server, schedule, horizon, runner)


def _emit_model_trace(tracer, result: DesResult) -> None:
    """Replay a recorded DES trace onto the active tracer's ``des``
    track: one span per station busy interval, plus the iteration
    barrier spans ``repro trace`` reconciles against."""
    for event in result.trace:
        if event.kind == "iteration":
            tracer.add_model_span(
                "iteration",
                event.start,
                event.end,
                cat=obs.ITERATION_CATEGORY,
                track="des",
                index=event.index,
            )
        else:
            tracer.add_model_span(
                event.name,
                event.start,
                event.end,
                cat="station",
                track="des",
                batch=event.index,
            )
