"""Batch-level discrete-event simulation of the training pipeline.

The analytical solver applies the steady-state overlap law
``throughput = min(prep, consume)``.  This module *simulates* the
pipeline batch by batch instead — preparation stations in tandem with
finite inter-stage buffers (double/quadruple buffering), the delivery
buffer next-batch prefetch provides, and the global iteration barrier of
synchronous data-parallel training — and measures throughput from event
times.  With deterministic service times the two engines must agree
closely (a test pins this); with service-time jitter enabled the DES
demonstrates the paper's §VI-A claim that latency variation barely moves
throughput thanks to pipelining.

Event times follow the standard recursion for tandem queues with
blocking-after-service: batch ``k`` departs station ``i`` at

    D[i][k] = max(arrival, own previous departure, space downstream) + S

which is an exact event-driven solution for FIFO deterministic networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.core.analytical import (
    TrainingScenario,
    make_sync_model,
    prep_capacity,
)
from repro.core.config import HardwareConfig
from repro.core.dataflow import build_demand
from repro.core.server import ServerModel, build_server


@dataclass(frozen=True)
class Station:
    """One preparation stage.

    ``rate`` is the samples/second of **one server**; ``servers`` batches
    can be in service concurrently (an FPGA array prepares one batch per
    device at device speed, not one batch at the aggregate rate).  The
    default ``servers=1`` models a perfectly shared stage at the
    aggregate rate — equivalent in steady state, optimistic on latency.
    """

    name: str
    rate: float  # samples/second per server
    servers: int = 1

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ConfigError(f"station {self.name} needs >= 1 server")

    @property
    def aggregate_rate(self) -> float:
        return self.rate * self.servers

    def service_time(self, batch_size: int) -> float:
        if self.rate <= 0:
            raise ConfigError(f"station {self.name} has non-positive rate")
        return batch_size / self.rate


@dataclass(frozen=True)
class TraceEvent:
    """One busy interval in the simulated pipeline.

    ``kind`` is ``"station"`` (a batch in service at a prep stage) or
    ``"iteration"`` (the global compute+sync barrier); ``index`` is the
    batch or iteration number.
    """

    kind: str
    name: str
    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DesResult:
    """Measured outcome of one DES run."""

    throughput: float
    iterations: int
    makespan: float
    station_utilization: Dict[str, float]
    stations: tuple
    trace: Optional[tuple] = None

    def relative_error(self, analytical_throughput: float) -> float:
        if analytical_throughput <= 0:
            raise SimulationError("reference throughput must be positive")
        return abs(self.throughput - analytical_throughput) / analytical_throughput

    def stall_time(self, station_name: str) -> float:
        """Total time the named station sat idle while the pipeline ran
        (requires a recorded trace)."""
        if self.trace is None:
            raise SimulationError("run with record_trace=True to analyze stalls")
        busy = sum(
            e.duration
            for e in self.trace
            if e.kind == "station" and e.name == station_name
        )
        return self.makespan - busy


def _stations_from_rates(
    rates: Dict[str, float], server_counts: Optional[Dict[str, int]] = None
) -> List[Station]:
    """Preparation stations in physical order, finite-rate only.

    ``server_counts`` splits a stage's aggregate rate across that many
    parallel servers (device-granular service, same steady throughput).
    """
    order = [
        "ssd",
        "host_cpu",
        "prep_compute",
        "prep_network",
        "host_memory",
        "pcie",
        "accelerator_ingest",
    ]
    server_counts = server_counts or {}
    stations = []
    for name in order:
        rate = rates.get(name, math.inf)
        if math.isfinite(rate):
            servers = max(1, server_counts.get(name, 1))
            stations.append(Station(name, rate / servers, servers=servers))
    if not stations:
        # Nothing binds preparation; a single infinite-speed stage keeps
        # the recursion trivial.
        stations.append(Station("prep", 1e18))
    return stations


def run_pipeline(
    stations: Sequence[Station],
    n_accelerators: int,
    batch_size: int,
    iteration_time: float,
    iterations: int,
    buffer_batches: int = 4,
    jitter: float = 0.0,
    seed: int = 0,
    record_trace: bool = False,
) -> DesResult:
    """Simulate ``iterations`` synchronous iterations.

    Per-accelerator batches flow through the tandem stations; iteration
    ``j`` starts once all its ``n`` batches are delivered and iteration
    ``j-1`` finished, then takes ``iteration_time`` (compute + sync).
    ``jitter`` multiplies every service time by a lognormal factor with
    the given coefficient of variation.
    """
    if iterations <= 0:
        raise ConfigError("iterations must be positive")
    if buffer_batches < 1:
        raise ConfigError("need at least one buffer slot between stages")
    n_batches = iterations * n_accelerators
    rng = np.random.default_rng(seed)

    def sample_service(base: float) -> float:
        if jitter <= 0:
            return base
        sigma = math.sqrt(math.log(1 + jitter**2))
        return base * rng.lognormal(-(sigma**2) / 2, sigma)

    m = len(stations)
    # depart[i][k] = time batch k leaves stage i (service done AND a
    # downstream slot was free — blocking after service).
    depart = [[0.0] * n_batches for _ in range(m)]
    busy = [0.0] * m
    trace: List[TraceEvent] = [] if record_trace else None  # type: ignore[assignment]

    iter_start = [0.0] * iterations
    iter_finish = [0.0] * iterations

    for k in range(n_batches):
        for i, station in enumerate(stations):
            arrival = depart[i - 1][k] if i > 0 else 0.0
            # A server frees when batch k - servers *departs* this stage
            # (a blocked batch keeps occupying its server).
            server_free = (
                depart[i][k - station.servers]
                if k - station.servers >= 0
                else 0.0
            )
            service = sample_service(station.service_time(batch_size))
            start = max(arrival, server_free)
            finish = start + service
            # Blocking after service: the batch holds its server until a
            # downstream slot frees — i.e. until batch k - B - S_next has
            # departed stage i+1 (B buffer slots + S_next in service).
            block = 0.0
            if i + 1 < m:
                j = k - buffer_batches - stations[i + 1].servers
                if j >= 0:
                    block = depart[i + 1][j]
            else:
                # Delivery buffer: next-batch prefetch holds a few global
                # batches ahead of the consumers.
                j = k // n_accelerators - buffer_batches - 1
                if j >= 0:
                    block = iter_start[j]
            depart[i][k] = max(finish, block)
            busy[i] += service
            if trace is not None:
                trace.append(
                    TraceEvent("station", station.name, k, start, finish)
                )
        # Iteration barrier.
        j = k // n_accelerators
        if (k + 1) % n_accelerators == 0:
            ready = depart[m - 1][k]
            prev_finish = iter_finish[j - 1] if j > 0 else 0.0
            iter_start[j] = max(ready, prev_finish)
            iter_finish[j] = iter_start[j] + sample_service(iteration_time)
            if trace is not None:
                trace.append(
                    TraceEvent(
                        "iteration", "compute+sync", j, iter_start[j], iter_finish[j]
                    )
                )

    makespan = iter_finish[-1]
    # Skip the pipeline-fill warmup when measuring steady throughput.
    warmup = min(iterations // 5, iterations - 1)
    window = iter_finish[-1] - iter_finish[warmup]
    done = iterations - 1 - warmup
    if done <= 0 or window <= 0:
        throughput = iterations * n_accelerators * batch_size / makespan
    else:
        throughput = done * n_accelerators * batch_size / window
    utilization = {
        s.name: busy[i] / (makespan * s.servers) for i, s in enumerate(stations)
    }
    return DesResult(
        throughput=throughput,
        iterations=iterations,
        makespan=makespan,
        station_utilization=utilization,
        stations=tuple(stations),
        trace=tuple(trace) if trace is not None else None,
    )


def simulate_des(
    scenario: TrainingScenario,
    server: Optional[ServerModel] = None,
    iterations: int = 60,
    buffer_batches: int = 4,
    jitter: float = 0.0,
    seed: int = 0,
    record_trace: bool = False,
) -> DesResult:
    """Build the scenario's server and run the batch-level DES."""
    hw = scenario.hw or HardwareConfig()
    if server is None:
        server = build_server(
            scenario.arch,
            scenario.n_accelerators,
            hw=hw,
            pool_size=scenario.pool_size,
        )
    demand = build_demand(server, scenario.workload)
    _, rates = prep_capacity(server, demand)
    # Device-granular service where the stage is an array of devices.
    counts = {
        "prep_compute": demand.n_prep_devices + demand.n_pool_devices,
        "ssd": len(server.ssd_ids),
        "accelerator_ingest": server.n_accelerators,
    }
    stations = _stations_from_rates(rates, server_counts=counts)

    batch = scenario.batch_size or scenario.workload.batch_size
    if scenario.accelerator == "tpu":
        spec = scenario.workload.accelerator_spec()
    else:
        spec = scenario.workload.legacy_accelerator_spec()
    sync_model = make_sync_model(
        scenario.arch.sync,
        scenario.fabric_bandwidth or hw.accelerator_fabric_bandwidth,
    )
    iteration_time = spec.compute_time(batch) + sync_model.time(
        scenario.n_accelerators, scenario.workload.model_bytes
    )
    # Stations serve per-accelerator batches; their rates are aggregate,
    # which the station abstraction already captures (one batch in
    # service at a time at the aggregate rate ≡ perfectly shared stage).
    return run_pipeline(
        stations,
        scenario.n_accelerators,
        batch,
        iteration_time,
        iterations,
        buffer_batches=buffer_batches,
        jitter=jitter,
        seed=seed,
        record_trace=record_trace,
    )
