"""Scale-out (multi-node) training, the §III-A comparison point.

The paper motivates scale-up with an MLPerf observation: "a scale-out
system with 96 DGX-2 shows only 39.7× improvement over one DGX-2".  The
mechanism is strong scaling over a slow inter-node fabric: the global
batch is fixed, so per-node work shrinks ~N× while the inter-node ring
all-reduce — over 100 Gb/s NICs instead of NVLink — does not, and
synchronization swallows the speedup.

This module models a cluster of scale-up nodes joined by a hierarchical
ring: a fast intra-node reduce (NVLink class), an inter-node ring over
the NICs, then an intra-node broadcast.  Data preparation is per-node
(each node ships its own host; that is the TCO cost §III-A charges
scale-out with).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro import units
from repro.sync.model import RingSyncModel
from repro.workloads.registry import Workload


@dataclass(frozen=True)
class ScaleOutConfig:
    """A cluster of identical scale-up nodes."""

    accs_per_node: int = 16                  # DGX-2
    nic_bandwidth: float = 12.5 * units.GB   # one 100 Gb/s NIC (§III-A)
    intra_node_bandwidth: float = 150 * units.GB
    nic_latency: float = 5e-6                    # RDMA-class per step

    def __post_init__(self) -> None:
        if self.accs_per_node <= 0:
            raise ConfigError("accs_per_node must be positive")
        if self.nic_bandwidth <= 0 or self.intra_node_bandwidth <= 0:
            raise ConfigError("bandwidths must be positive")


@dataclass(frozen=True)
class ScaleOutResult:
    """Strong-scaling outcome for one node count."""

    n_nodes: int
    n_accelerators: int
    per_acc_batch: int
    compute_time: float
    sync_time: float
    throughput: float
    speedup_over_one_node: float

    @property
    def efficiency(self) -> float:
        """Speedup divided by the node count (1.0 = perfect scaling)."""
        return self.speedup_over_one_node / self.n_nodes

    def to_dict(self) -> dict:
        """JSON-encodable form for the persistent result cache."""
        return {
            "n_nodes": self.n_nodes,
            "n_accelerators": self.n_accelerators,
            "per_acc_batch": self.per_acc_batch,
            "compute_time": self.compute_time,
            "sync_time": self.sync_time,
            "throughput": self.throughput,
            "speedup_over_one_node": self.speedup_over_one_node,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScaleOutResult":
        return cls(
            n_nodes=data["n_nodes"],
            n_accelerators=data["n_accelerators"],
            per_acc_batch=data["per_acc_batch"],
            compute_time=data["compute_time"],
            sync_time=data["sync_time"],
            throughput=data["throughput"],
            speedup_over_one_node=data["speedup_over_one_node"],
        )


def hierarchical_sync_time(
    config: ScaleOutConfig, n_nodes: int, model_bytes: float
) -> float:
    """Intra-node ring reduce + inter-node ring + intra-node broadcast.

    The intra-node phases move the gradient across the fast fabric; the
    inter-node ring moves ``2·M·(N-1)/N`` bytes per node over the NICs —
    the dominant term for any real N.
    """
    if n_nodes < 1:
        raise ConfigError("n_nodes must be positive")
    intra = RingSyncModel(bandwidth=config.intra_node_bandwidth)
    inter = RingSyncModel(
        bandwidth=config.nic_bandwidth, step_latency=config.nic_latency
    )
    intra_time = intra.time(config.accs_per_node, model_bytes)
    inter_time = inter.time(n_nodes, model_bytes) if n_nodes > 1 else 0.0
    # Reduce-to-node-leader + broadcast ≈ one full intra ring's volume.
    return intra_time + inter_time


def simulate_scaleout(
    workload: Workload,
    n_nodes: int,
    config: Optional[ScaleOutConfig] = None,
    global_batch: Optional[int] = None,
    max_batch_growth: float = 4.0,
) -> ScaleOutResult:
    """The MLPerf time-to-train regime: the global batch may grow with
    the cluster only up to an accuracy-preserving cap
    (``max_batch_growth`` × one node's batch — the large-batch recipes
    of §II-B stop helping eventually), after which adding nodes shrinks
    per-accelerator batches while the NIC-bound sync cost persists."""
    if n_nodes < 1:
        raise ConfigError("n_nodes must be positive")
    if max_batch_growth < 1:
        raise ConfigError("max_batch_growth must be >= 1")
    config = config or ScaleOutConfig()
    n_accs = n_nodes * config.accs_per_node
    if global_batch is None:
        one_node_batch = workload.batch_size * config.accs_per_node
        global_batch = int(
            min(one_node_batch * n_nodes, one_node_batch * max_batch_growth)
        )
    per_acc = max(1, global_batch // n_accs)

    spec = workload.accelerator_spec()
    compute = spec.compute_time(per_acc)
    sync = hierarchical_sync_time(config, n_nodes, workload.model_bytes)
    throughput = n_accs * per_acc / (compute + sync)

    one_spec_batch = max(1, global_batch // config.accs_per_node)
    one_compute = spec.compute_time(one_spec_batch)
    one_sync = hierarchical_sync_time(config, 1, workload.model_bytes)
    one_node = config.accs_per_node * one_spec_batch / (one_compute + one_sync)

    return ScaleOutResult(
        n_nodes=n_nodes,
        n_accelerators=n_accs,
        per_acc_batch=per_acc,
        compute_time=compute,
        sync_time=sync,
        throughput=throughput,
        speedup_over_one_node=throughput / one_node,
    )


def scaleup_equivalent_speedup(
    workload: Workload, n_accelerators: int, accs_per_node: int = 16
) -> float:
    """The scale-up counterpart: one node grows to ``n_accelerators`` on
    the NVLink-class fabric with weak scaling (per-device batch held at
    the Table I value), normalized to one ``accs_per_node`` node."""
    if n_accelerators <= 0:
        raise ConfigError("n_accelerators must be positive")
    spec = workload.accelerator_spec()
    ring = RingSyncModel()
    batch = workload.batch_size

    def node_rate(n: int) -> float:
        compute = spec.compute_time(batch)
        sync = ring.time(n, workload.model_bytes)
        return n * batch / (compute + sync)

    return node_rate(n_accelerators) / node_rate(accs_per_node)
