"""Host-resource accounting: the quantities behind Figures 9–11 and 22.

Three views:

* :func:`host_requirements` — what a target throughput *demands* of the
  host (Figure 10: required cores / memory BW / PCIe BW at the RC,
  normalized to a DGX-2);
* :func:`resource_breakdown` — per-category decomposition of each host
  resource (Figures 11 and 22);
* :func:`latency_decomposition` — the serialized per-stage latency stack
  for one global batch (Figures 3 and 9).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError
from repro.core.config import (
    DGX2_CORES,
    DGX2_MEMORY_BANDWIDTH,
    DGX2_PCIE_BANDWIDTH,
    HardwareConfig,
    PrepDevice,
)
from repro.core.dataflow import CATEGORIES, DataflowDemand
from repro.core.results import HostRequirements, LatencyDecomposition
from repro.core.server import ServerModel
from repro.pcie.traffic import completion_time


def host_requirements(
    demand: DataflowDemand,
    target_rate: float,
    cpu_frequency: float = 2.5e9,
) -> HostRequirements:
    """Host resources needed to sustain ``target_rate`` samples/s.

    ``target_rate`` is typically ``n_accelerators × workload.sample_rate``
    — what the accelerators *could* consume if preparation kept up, which
    is exactly the "required" framing of Figure 10.
    """
    if target_rate <= 0:
        raise SimulationError("target_rate must be positive")
    cores = demand.total_cpu_cycles * target_rate / cpu_frequency
    mem_bw = demand.total_mem_bytes * target_rate
    pcie_bw = demand.rc_bytes_per_sample() * target_rate
    return HostRequirements(
        target_rate=target_rate,
        required_cores=cores,
        required_memory_bandwidth=mem_bw,
        required_pcie_bandwidth=pcie_bw,
        normalized_cores=cores / DGX2_CORES,
        normalized_memory_bandwidth=mem_bw / DGX2_MEMORY_BANDWIDTH,
        normalized_pcie_bandwidth=pcie_bw / DGX2_PCIE_BANDWIDTH,
    )


def cores_per_accelerator(
    demand: DataflowDemand,
    per_accelerator_rate: float,
    cpu_frequency: float = 2.5e9,
) -> float:
    """CPU cores one accelerator's data preparation keeps busy.

    §III-C contrasts DGX-2's 3:1 core:GPU provisioning with the 18.9:1
    ratio that high-performance accelerators force — which is this
    quantity for the worst Table I workload (RNN-S).
    """
    if per_accelerator_rate <= 0:
        raise SimulationError("per_accelerator_rate must be positive")
    return demand.total_cpu_cycles * per_accelerator_rate / cpu_frequency


def resource_breakdown(demand: DataflowDemand) -> Dict[str, Dict[str, float]]:
    """Per-sample host-resource cost split by category.

    Returns ``{"cpu": {...}, "memory": {...}, "pcie": {...}}`` where each
    inner dict maps the Figure 11/22 categories to absolute per-sample
    cost (cycles, bytes, RC bytes).  Divide two architectures' tables to
    get the Figure 22 normalized view; normalize one table to its own sum
    for the Figure 11 shares.
    """
    pcie = {c: 0.0 for c in CATEGORIES}
    pcie.update(demand.rc_bytes_per_sample(by_category=True))
    return {
        "cpu": dict(demand.cpu_cycles),
        "memory": dict(demand.mem_bytes),
        "pcie": pcie,
    }


def shares(table: Dict[str, float]) -> Dict[str, float]:
    """Normalize a category table to fractions of its sum (Figure 11)."""
    total = sum(table.values())
    if total <= 0:
        raise SimulationError("cannot normalize an empty table")
    return {k: v / total for k, v in table.items()}


def latency_decomposition(
    server: ServerModel,
    demand: DataflowDemand,
    compute_time: float,
    sync_time: float,
    batch_size: int,
) -> LatencyDecomposition:
    """Serialized stage times for one global batch (Figures 3 and 9).

    The preparation stages are shown as if they ran back to back
    (transfer, then formatting, then augmentation) — the decomposition
    view the paper plots; the overlap law is applied by the throughput
    solver, not here.
    """
    n_samples = server.n_accelerators * batch_size

    fmt_cost = demand.pipeline_cost.split(
        ("decode", "crop", "spectrogram", "mel")
    )
    aug_cost = demand.pipeline_cost.split(
        ("mirror", "noise", "cast", "masking", "norm")
    )

    if demand.arch.prep_device is PrepDevice.CPU:
        budget = server.cpu.cycle_budget
        t_fmt = fmt_cost.cpu_cycles * n_samples / budget
        t_aug = aug_cost.cpu_cycles * n_samples / budget
    else:
        profile = demand.prep_profile
        devices = demand.n_prep_devices + demand.n_pool_devices
        per_device = profile.reference_frequency
        t_fmt = (
            profile.effective_cycles(fmt_cost) * n_samples / (devices * per_device)
        )
        t_aug = (
            profile.effective_cycles(aug_cost) * n_samples / (devices * per_device)
        )

    # Transfer: the slowest movement resource, serialized for the batch.
    per_sample_times = [
        completion_time(server.topology, demand.pcie_flows),
        demand.ssd_read_bytes / server.aggregate_ssd_bandwidth(),
    ]
    mem = demand.total_mem_bytes
    if mem > 0:
        per_sample_times.append(mem / server.dram.bandwidth)
    t_transfer = max(per_sample_times) * n_samples

    return LatencyDecomposition(
        data_transfer=t_transfer,
        data_formatting=t_fmt,
        data_augmentation=t_aug,
        model_computation=compute_time,
        model_synchronization=sync_time,
    )
