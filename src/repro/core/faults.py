"""Fault injection: degraded operation of a TrainBox server.

Production racks lose devices.  The clustered design degrades
gracefully: an SSD failure halves a box's read bandwidth (after
resharding its data onto the surviving drive), an FPGA failure halves a
box's preparation compute (the prep-pool can absorb it), and an
accelerator failure shrinks the job.  This module injects such faults
into a built server and lets the ordinary engines price the result —
the tests assert throughput degrades by bounded, explainable amounts and
never silently collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.core.server import BoxInfo, ServerModel


@dataclass(frozen=True)
class FaultSet:
    """Devices to fail, by endpoint id."""

    device_ids: frozenset

    @staticmethod
    def of(*device_ids: str) -> "FaultSet":
        return FaultSet(frozenset(device_ids))

    def __len__(self) -> int:
        return len(self.device_ids)


def inject_faults(server: ServerModel, faults: FaultSet) -> ServerModel:
    """A degraded copy of ``server`` with the failed devices removed from
    every box registry (the PCIe topology object is shared — dead
    endpoints simply no longer source or sink traffic).

    Raises :class:`ConfigError` if a fault would leave a box unable to
    function at all (no SSD or no FPGA while it still has accelerators),
    mirroring the operational rule that such a box is drained instead.
    """
    known = (
        set(server.acc_ids) | set(server.prep_ids) | set(server.ssd_ids)
    )
    unknown = faults.device_ids - known
    if unknown:
        raise ConfigError(f"unknown devices in fault set: {sorted(unknown)}")

    degraded_boxes: List[BoxInfo] = []
    for box in server.boxes:
        acc = [a for a in box.acc_ids if a not in faults.device_ids]
        prep = [p for p in box.prep_ids if p not in faults.device_ids]
        ssd = [s for s in box.ssd_ids if s not in faults.device_ids]
        if acc and box.ssd_ids and not ssd:
            raise ConfigError(
                f"box {box.box_id} lost every SSD; drain it instead"
            )
        if acc and box.prep_ids and not prep:
            raise ConfigError(
                f"box {box.box_id} lost every FPGA; drain it instead"
            )
        degraded_boxes.append(
            BoxInfo(
                box_id=box.box_id,
                switch_id=box.switch_id,
                acc_ids=acc,
                prep_ids=prep,
                ssd_ids=ssd,
            )
        )
    return ServerModel(
        arch=server.arch,
        hw=server.hw,
        topology=server.topology,
        boxes=degraded_boxes,
        cpu=server.cpu,
        dram=server.dram,
        prep_network=server.prep_network,
        pool_fpga_ids=list(server.pool_fpga_ids),
    )


def drain_box(server: ServerModel, box_id: str) -> ServerModel:
    """Remove a whole box from service (its devices stop participating);
    the standard response to an unrecoverable box fault."""
    if box_id not in {b.box_id for b in server.boxes}:
        raise ConfigError(f"unknown box: {box_id}")
    remaining = [b for b in server.boxes if b.box_id != box_id]
    if not any(b.acc_ids for b in remaining):
        raise ConfigError("draining the last accelerator box")
    return ServerModel(
        arch=server.arch,
        hw=server.hw,
        topology=server.topology,
        boxes=remaining,
        cpu=server.cpu,
        dram=server.dram,
        prep_network=server.prep_network,
        pool_fpga_ids=list(server.pool_fpga_ids),
    )
