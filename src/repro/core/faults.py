"""Fault injection: degraded operation of a TrainBox server.

Production racks lose devices.  The clustered design degrades
gracefully: an SSD failure halves a box's read bandwidth (after
resharding its data onto the surviving drive), an FPGA failure halves a
box's preparation compute (the prep-pool can absorb it), and an
accelerator failure shrinks the job.  This module injects such faults
into a built server and lets the ordinary engines price the result —
the tests assert throughput degrades by bounded, explainable amounts and
never silently collapses.

Two granularities:

* a static :class:`FaultSet` — devices that are simply gone — feeds
  :func:`inject_faults` and models the steady degraded state;
* a time-varying :class:`FaultSchedule` — ``(device, fail_time,
  recover_time)`` events — is priced as a **piecewise degraded
  throughput timeline**: the schedule partitions the horizon into
  windows of constant fault state, each window's server is degraded
  with :func:`inject_faults` and priced by an ordinary engine
  (analytical, DES or flow via :func:`price_schedule`), and the
  segments compose into a :class:`DegradedTimeline` whose every step is
  explainable by the operational rules above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.errors import ConfigError
from repro.core.server import BoxInfo, ServerModel


@dataclass(frozen=True)
class FaultSet:
    """Devices to fail, by endpoint id."""

    device_ids: frozenset

    @staticmethod
    def of(*device_ids: str) -> "FaultSet":
        return FaultSet(frozenset(device_ids))

    def __len__(self) -> int:
        return len(self.device_ids)


def inject_faults(server: ServerModel, faults: FaultSet) -> ServerModel:
    """A degraded copy of ``server`` with the failed devices removed from
    every box registry (the PCIe topology object is shared — dead
    endpoints simply no longer source or sink traffic).

    Raises :class:`ConfigError` if a fault would leave a box unable to
    function at all (no SSD or no FPGA while it still has accelerators),
    mirroring the operational rule that such a box is drained instead.
    """
    known = (
        set(server.acc_ids) | set(server.prep_ids) | set(server.ssd_ids)
    )
    unknown = faults.device_ids - known
    if unknown:
        raise ConfigError(f"unknown devices in fault set: {sorted(unknown)}")

    degraded_boxes: List[BoxInfo] = []
    for box in server.boxes:
        acc = [a for a in box.acc_ids if a not in faults.device_ids]
        prep = [p for p in box.prep_ids if p not in faults.device_ids]
        ssd = [s for s in box.ssd_ids if s not in faults.device_ids]
        if acc and box.ssd_ids and not ssd:
            raise ConfigError(
                f"box {box.box_id} lost every SSD; drain it instead"
            )
        if acc and box.prep_ids and not prep:
            raise ConfigError(
                f"box {box.box_id} lost every FPGA; drain it instead"
            )
        degraded_boxes.append(
            BoxInfo(
                box_id=box.box_id,
                switch_id=box.switch_id,
                acc_ids=acc,
                prep_ids=prep,
                ssd_ids=ssd,
            )
        )
    return ServerModel(
        arch=server.arch,
        hw=server.hw,
        topology=server.topology,
        boxes=degraded_boxes,
        cpu=server.cpu,
        dram=server.dram,
        prep_network=server.prep_network,
        pool_fpga_ids=list(server.pool_fpga_ids),
    )


# -- time-varying faults ----------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One device outage: down over ``[fail_time, recover_time)``.

    ``recover_time`` defaults to ``inf`` — the device never comes back
    (it is replaced on the next maintenance window, outside the priced
    horizon)."""

    device_id: str
    fail_time: float
    recover_time: float = math.inf

    def __post_init__(self) -> None:
        if self.fail_time < 0:
            raise ConfigError(
                f"fail_time must be >= 0: {self.device_id} at {self.fail_time}"
            )
        if self.recover_time <= self.fail_time:
            raise ConfigError(
                f"recover_time must be after fail_time: {self.device_id} "
                f"fails {self.fail_time}, recovers {self.recover_time}"
            )

    def down_at(self, t: float) -> bool:
        return self.fail_time <= t < self.recover_time


@dataclass(frozen=True)
class FaultSchedule:
    """A timeline of device failures and recoveries.

    A device may appear in several events (repeated outages); it is
    down at ``t`` when *any* of its events covers ``t``."""

    events: tuple

    @staticmethod
    def of(*events: FaultEvent) -> "FaultSchedule":
        return FaultSchedule(tuple(events))

    def __len__(self) -> int:
        return len(self.events)

    def active_at(self, t: float) -> FaultSet:
        """The devices down at time ``t``, as a static fault set."""
        return FaultSet(
            frozenset(e.device_id for e in self.events if e.down_at(t))
        )

    def windows(self, horizon: float) -> List[Tuple[float, float, FaultSet]]:
        """Partition ``[0, horizon)`` into maximal windows of constant
        fault state: ``(start, end, active_faults)`` triples covering
        the horizon exactly, in time order."""
        if horizon <= 0:
            raise ConfigError(f"horizon must be positive: {horizon}")
        cuts = {0.0, float(horizon)}
        for e in self.events:
            for t in (e.fail_time, e.recover_time):
                if 0.0 < t < horizon:
                    cuts.add(float(t))
        edges = sorted(cuts)
        return [
            (t0, t1, self.active_at(t0))
            for t0, t1 in zip(edges, edges[1:])
        ]


@dataclass(frozen=True)
class TimelineSegment:
    """One constant-state window of a priced fault timeline."""

    start: float
    end: float
    failed: tuple  # sorted device ids down in this window
    throughput: float
    bottleneck: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def samples(self) -> float:
        return self.throughput * self.duration

    def to_dict(self) -> Dict:
        return {
            "start": self.start,
            "end": self.end,
            "failed": list(self.failed),
            "throughput": self.throughput,
            "bottleneck": self.bottleneck,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TimelineSegment":
        return cls(
            start=data["start"],
            end=data["end"],
            failed=tuple(data["failed"]),
            throughput=data["throughput"],
            bottleneck=data["bottleneck"],
        )


@dataclass(frozen=True)
class DegradedTimeline:
    """A piecewise-constant throughput timeline under a fault schedule.

    Each segment is an ordinary engine run on the window's degraded
    server, so every step in the timeline is explainable: FPGA loss is
    absorbed by the prep pool (bounded dip), SSD loss halves the box's
    read bandwidth after resharding, recovery restores the healthy
    rate exactly."""

    segments: tuple

    @property
    def horizon(self) -> float:
        return self.segments[-1].end

    @property
    def total_samples(self) -> float:
        """Samples processed over the horizon (the throughput integral)."""
        return sum(s.samples for s in self.segments)

    @property
    def mean_throughput(self) -> float:
        """Time-weighted average throughput over the horizon."""
        return self.total_samples / self.horizon

    @property
    def min_throughput(self) -> float:
        return min(s.throughput for s in self.segments)

    @property
    def max_throughput(self) -> float:
        return max(s.throughput for s in self.segments)

    def throughput_at(self, t: float) -> float:
        for seg in self.segments:
            if seg.start <= t < seg.end:
                return seg.throughput
        raise ConfigError(f"time {t} outside the priced horizon")

    def to_dict(self) -> Dict:
        """JSON-encodable form (the service wire payload; floats
        round-trip through JSON exactly, so a served timeline is
        bit-for-bit the priced one)."""
        return {"segments": [s.to_dict() for s in self.segments]}

    @classmethod
    def from_dict(cls, data: Dict) -> "DegradedTimeline":
        return cls(
            tuple(TimelineSegment.from_dict(s) for s in data["segments"])
        )


def price_schedule(
    server: ServerModel,
    schedule: FaultSchedule,
    horizon: float,
    runner: Callable[[ServerModel], object],
) -> DegradedTimeline:
    """Price a fault schedule as a piecewise degraded timeline.

    ``runner(degraded_server)`` evaluates one window's constant fault
    state with whatever engine the caller chose and returns a
    :class:`~repro.core.results.SimulationOutcome`.  Windows with the
    same fault set share one engine run (failure/recovery cycles of the
    same device cost nothing extra), and the fault-set validation of
    :func:`inject_faults` applies per window — a schedule that strips a
    box of its last SSD or FPGA raises :class:`ConfigError` with the
    drain rule, exactly like the static path.
    """
    cache: Dict[frozenset, object] = {}
    segments = []
    for start, end, faults in schedule.windows(horizon):
        key = faults.device_ids
        outcome = cache.get(key)
        if outcome is None:
            degraded = (
                inject_faults(server, faults) if faults.device_ids else server
            )
            outcome = runner(degraded)
            cache[key] = outcome
            obs.inc("faults.windows_priced")
        segments.append(
            TimelineSegment(
                start=start,
                end=end,
                failed=tuple(sorted(key)),
                throughput=outcome.throughput,
                bottleneck=outcome.bottleneck,
            )
        )
    obs.inc("faults.schedules_priced")
    obs.observe("faults.schedule_events", len(schedule))
    return DegradedTimeline(tuple(segments))


def drain_box(server: ServerModel, box_id: str) -> ServerModel:
    """Remove a whole box from service (its devices stop participating);
    the standard response to an unrecoverable box fault."""
    if box_id not in {b.box_id for b in server.boxes}:
        raise ConfigError(f"unknown box: {box_id}")
    remaining = [b for b in server.boxes if b.box_id != box_id]
    if not any(b.acc_ids for b in remaining):
        raise ConfigError("draining the last accelerator box")
    return ServerModel(
        arch=server.arch,
        hw=server.hw,
        topology=server.topology,
        boxes=remaining,
        cpu=server.cpu,
        dram=server.dram,
        prep_network=server.prep_network,
        pool_fpga_ids=list(server.pool_fpga_ids),
    )
