"""Hardware constants and architecture configurations.

The hardware defaults describe the paper's profiling host (a DGX-2-class
machine: two-socket Xeon with 48 physical cores, 239 GB/s of memory
bandwidth) and the box geometry of §V-D: eight NN accelerators per box
behind PEX8796-class switches, two NVMe SSDs and two FPGAs per train box,
boxes daisy-chained from the root complex.

Architecture configurations name the evaluated designs: the Figure 19
ladder (Baseline → +Acc → +P2P → +Gen4 → TrainBox) and the Figure 21
variants (GPU-based acceleration, TrainBox without the prep-pool).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro import units
from repro.pcie.link import PcieGen

#: DGX-2 reference host resources the paper normalizes against (§III-C).
DGX2_CORES = 48
DGX2_MEMORY_BANDWIDTH = 239 * units.GB
#: Aggregate PCIe bandwidth at a DGX-2-class root complex used as the
#: Figure 10c normalization reference.
DGX2_PCIE_BANDWIDTH = 112 * units.GB


class PrepDevice(enum.Enum):
    """Where data-preparation compute runs."""

    CPU = "cpu"
    FPGA = "fpga"
    GPU = "gpu"


class SyncStrategy(enum.Enum):
    """Model-synchronization strategy (Figure 3's optimization ladder)."""

    CENTRAL = "central"
    TREE = "tree"
    RING = "ring"


@dataclass(frozen=True)
class HardwareConfig:
    """Physical constants of the simulated machine."""

    # Host.
    cpu_cores: int = DGX2_CORES
    cpu_frequency: float = 2.5 * units.GHZ
    memory_bandwidth: float = DGX2_MEMORY_BANDWIDTH

    # Root complex ports per device group (chains hang off these).
    acc_root_ports: int = 8
    prep_root_ports: int = 4
    ssd_root_ports: int = 2

    # Box geometry (§V-D).
    accs_per_box: int = 8
    fpgas_per_train_box: int = 2
    ssds_per_train_box: int = 2
    prep_devices_per_box: int = 8
    ssds_per_ssd_box: int = 8
    max_boxes_per_chain: int = 4

    # Prep-accelerator provisioning for the non-clustered configs: the
    # paper's GPU experiment uses a 1:4 prep:NN-accelerator ratio (§VI-D)
    # and TrainBox itself ships 2 FPGAs per 8 accelerators.
    prep_per_acc_ratio: float = 0.25

    # Devices.
    ssd_read_bandwidth: float = 3.2 * units.GB
    accelerator_ingest_bandwidth: float = 16 * units.GB

    # Interconnects.
    pcie_lanes: int = 16
    accelerator_fabric_bandwidth: float = 150 * units.GB
    ethernet_bandwidth: float = 12.5 * units.GB  # 100 GbE (§IV-D)

    def __post_init__(self) -> None:
        for attr in (
            "cpu_cores",
            "acc_root_ports",
            "prep_root_ports",
            "ssd_root_ports",
            "accs_per_box",
            "fpgas_per_train_box",
            "ssds_per_train_box",
            "prep_devices_per_box",
            "ssds_per_ssd_box",
            "max_boxes_per_chain",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        if not 0 < self.prep_per_acc_ratio <= 1:
            raise ConfigError("prep_per_acc_ratio must be in (0, 1]")


class Architecture(enum.Enum):
    """Named architecture configurations from the evaluation."""

    BASELINE = "baseline"
    BASELINE_ACC = "baseline+acc"
    BASELINE_ACC_P2P = "baseline+acc+p2p"
    BASELINE_ACC_P2P_GEN4 = "baseline+acc+p2p+gen4"
    TRAINBOX_NO_POOL = "trainbox-no-pool"
    TRAINBOX = "trainbox"


@dataclass(frozen=True)
class ArchitectureConfig:
    """Feature switches that define one evaluated architecture.

    ``clustering`` implies the train-box layout; without it, devices are
    grouped in type-homogeneous boxes chained from the root complex.
    """

    name: str
    prep_device: PrepDevice = PrepDevice.CPU
    p2p: bool = False
    clustering: bool = False
    prep_pool: bool = False
    pcie_gen: PcieGen = PcieGen.GEN3
    sync: SyncStrategy = SyncStrategy.RING

    def __post_init__(self) -> None:
        if self.clustering and self.prep_device is PrepDevice.CPU:
            raise ConfigError("clustering requires hardware prep acceleration")
        if self.clustering and not self.p2p:
            raise ConfigError("the train-box datapath is peer-to-peer by design")
        if self.prep_pool and not self.clustering:
            raise ConfigError("the prep-pool attaches to train boxes")
        if self.p2p and self.prep_device is PrepDevice.CPU:
            raise ConfigError("P2P needs a device-side P2P handler (FPGA)")
        if self.p2p and self.prep_device is PrepDevice.GPU:
            raise ConfigError(
                "GPUs only support P2P with selected device pairs (§V-B); "
                "the generic SSD→prep→accelerator path needs an FPGA"
            )

    @staticmethod
    def baseline() -> "ArchitectureConfig":
        """CPU data preparation, staged through host memory."""
        return ArchitectureConfig(name=Architecture.BASELINE.value)

    @staticmethod
    def baseline_acc(
        device: PrepDevice = PrepDevice.FPGA,
    ) -> "ArchitectureConfig":
        """Step 1 (§IV-B): offload prep compute to PCIe accelerators."""
        if device is PrepDevice.CPU:
            raise ConfigError("baseline_acc needs a hardware prep device")
        suffix = "" if device is PrepDevice.FPGA else f"({device.value})"
        return ArchitectureConfig(
            name=Architecture.BASELINE_ACC.value + suffix, prep_device=device
        )

    @staticmethod
    def baseline_acc_p2p() -> "ArchitectureConfig":
        """Step 2 (§IV-C): direct SSD→FPGA→accelerator transfers."""
        return ArchitectureConfig(
            name=Architecture.BASELINE_ACC_P2P.value,
            prep_device=PrepDevice.FPGA,
            p2p=True,
        )

    @staticmethod
    def baseline_acc_p2p_gen4() -> "ArchitectureConfig":
        """The Figure 19 what-if: double every PCIe link instead of
        restructuring the datapath."""
        return ArchitectureConfig(
            name=Architecture.BASELINE_ACC_P2P_GEN4.value,
            prep_device=PrepDevice.FPGA,
            p2p=True,
            pcie_gen=PcieGen.GEN4,
        )

    @staticmethod
    def trainbox(prep_pool: bool = True) -> "ArchitectureConfig":
        """Step 3 (§IV-D): communication-aware clustering, optionally with
        the Ethernet prep-pool."""
        name = (
            Architecture.TRAINBOX.value
            if prep_pool
            else Architecture.TRAINBOX_NO_POOL.value
        )
        return ArchitectureConfig(
            name=name,
            prep_device=PrepDevice.FPGA,
            p2p=True,
            clustering=True,
            prep_pool=prep_pool,
        )

    @staticmethod
    def figure19_ladder() -> list:
        """The five configurations of Figure 19, in order."""
        return [
            ArchitectureConfig.baseline(),
            ArchitectureConfig.baseline_acc(),
            ArchitectureConfig.baseline_acc_p2p(),
            ArchitectureConfig.baseline_acc_p2p_gen4(),
            ArchitectureConfig.trainbox(),
        ]
