"""The train initializer (§V-A).

Before training starts, the initializer:

1. measures per-batch execution time by feeding dummy batches to an
   accelerator (here: the calibrated accelerator spec),
2. computes the required data-preparation throughput from that time and
   the synchronization model,
3. sizes a prep-pool request — shortfall divided by per-FPGA throughput —
   and allocates it from the global pool,
4. distributes the training data across the SSDs of each train box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.core.server import ServerModel
from repro.datasets.storage import DataShard, shard_dataset
from repro.dataprep.cost import profile_by_name
from repro.network.preppool import PoolAllocation, PrepPool, pool_fpgas_needed
from repro.sync.model import RingSyncModel
from repro.workloads.registry import Workload


@dataclass(frozen=True)
class TrainPlan:
    """The initializer's output for one training job."""

    job_id: str
    workload_name: str
    n_accelerators: int
    batch_size: int

    per_batch_time: float
    sync_time: float
    required_prep_rate: float
    in_box_prep_rate: float
    per_fpga_rate: float

    pool_fpgas_requested: int
    pool_grant: Optional[PoolAllocation]
    shards: Dict[str, List[DataShard]] = field(default_factory=dict)

    @property
    def pool_fpgas_granted(self) -> int:
        return self.pool_grant.count if self.pool_grant else 0

    @property
    def prep_rate_with_pool(self) -> float:
        return self.in_box_prep_rate + self.pool_fpgas_granted * self.per_fpga_rate

    @property
    def meets_target(self) -> bool:
        """Will preparation compute keep up with the accelerators?"""
        return self.prep_rate_with_pool >= self.required_prep_rate * (1 - 1e-9)

    @property
    def extra_resource_fraction(self) -> float:
        """Pool resources as a fraction of in-box resources — the paper
        reports Transformer-SR needing 54% more FPGA resources (§VI-D)."""
        if self.in_box_prep_rate <= 0:
            raise ConfigError("no in-box prep resources")
        return self.pool_fpgas_granted * self.per_fpga_rate / self.in_box_prep_rate


class TrainInitializer:
    """Plans jobs on a TrainBox server and manages its prep-pool."""

    def __init__(self, server: ServerModel) -> None:
        if not server.arch.clustering:
            raise ConfigError("the train initializer targets TrainBox servers")
        self.server = server
        self.pool = PrepPool(list(server.pool_fpga_ids))

    def plan(
        self,
        workload: Workload,
        num_items: int,
        job_id: str = "job0",
        batch_size: Optional[int] = None,
    ) -> TrainPlan:
        """Initialize one training job (§V-A steps 1–4)."""
        server = self.server
        n = server.n_accelerators
        batch = batch_size or workload.batch_size

        # Step 1-2: dummy-batch timing + sync model → required throughput.
        spec = workload.accelerator_spec()
        per_batch = spec.compute_time(batch)
        sync = RingSyncModel(
            bandwidth=server.hw.accelerator_fabric_bandwidth
        ).time(n, workload.model_bytes)
        required = n * batch / (per_batch + sync)

        # Step 3: pool sizing.
        cost = workload.prep_pipeline().cost(workload.dataset_sample_spec())
        per_fpga = profile_by_name("fpga").sample_rate(cost)
        in_box = len(server.prep_ids) * per_fpga
        requested = pool_fpgas_needed(required, in_box, per_fpga)
        grant: Optional[PoolAllocation] = None
        if requested and server.arch.prep_pool:
            grant = self.pool.allocate(job_id, min(requested, self.pool.available))

        # Step 4: distribute data to each box's SSDs, sized by the box's
        # accelerator share so sequential reads stay local and balanced.
        shards: Dict[str, List[DataShard]] = {}
        start = 0
        boxes = [b for b in server.boxes if b.acc_ids]
        remaining = num_items
        for i, box in enumerate(boxes):
            if i == len(boxes) - 1:
                count = remaining
            else:
                count = round(num_items * len(box.acc_ids) / n)
            count = min(count, remaining)
            if count > 0:
                box_shards = shard_dataset(count, box.ssd_ids)
                # Re-base the shard ranges onto global item indices.
                rebased = [
                    DataShard(
                        s.ssd_id,
                        range(start + s.item_indices.start, start + s.item_indices.stop),
                    )
                    for s in box_shards
                ]
                shards[box.box_id] = rebased
                start += count
                remaining -= count
        if remaining != 0:
            raise ConfigError(f"sharding left {remaining} items unassigned")

        return TrainPlan(
            job_id=job_id,
            workload_name=workload.name,
            n_accelerators=n,
            batch_size=batch,
            per_batch_time=per_batch,
            sync_time=sync,
            required_prep_rate=required,
            in_box_prep_rate=in_box,
            per_fpga_rate=per_fpga,
            pool_fpgas_requested=requested,
            pool_grant=grant,
            shards=shards,
        )

    def release(self, job_id: str) -> None:
        """Return a finished job's pool FPGAs."""
        self.pool.release(job_id)
