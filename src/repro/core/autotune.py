"""Configuration search: the cheapest TrainBox recipe that meets target.

The paper fixes one train-box recipe (8 accelerators, 2 FPGAs, 2 SSDs,
Gen3) and sizes the prep-pool per job (§V-A).  A deployer's question is
the inverse: given a workload mix and an accelerator count, which box
recipe and pool size reach the accelerator-bound target at the lowest
capex?  This module grid-searches the small design space with the
analytical engine and prices candidates with the TCO model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.analysis.tco import ComponentPrices, trainbox_bom
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.pcie.link import PcieGen
from repro.workloads.registry import Workload


@dataclass(frozen=True)
class Candidate:
    """One evaluated design point."""

    fpgas_per_box: int
    ssds_per_box: int
    pcie_gen: PcieGen
    pool_fpgas: int
    achieved_fraction: float  # of the accelerator-bound target
    capex: float
    bottleneck: str

    def describe(self) -> str:
        return (
            f"{self.fpgas_per_box} FPGA/box, {self.ssds_per_box} SSD/box, "
            f"{self.pcie_gen.name}, pool={self.pool_fpgas}"
        )


@dataclass(frozen=True)
class AutotuneResult:
    """The chosen design plus the full frontier for inspection."""

    best: Candidate
    candidates: Tuple[Candidate, ...]

    def feasible(self) -> List[Candidate]:
        return [c for c in self.candidates if c.achieved_fraction >= self.target]

    target: float = 0.95


def autotune(
    workloads: Sequence[Workload],
    n_accelerators: int,
    target_fraction: float = 0.95,
    fpga_options: Iterable[int] = (1, 2, 4),
    ssd_options: Iterable[int] = (1, 2, 4),
    gen_options: Iterable[PcieGen] = (PcieGen.GEN3, PcieGen.GEN4),
    pool_options: Iterable[int] = (0, 16, 32, 64, 96),
    prices: ComponentPrices = ComponentPrices(),
    base_hw: Optional[HardwareConfig] = None,
) -> AutotuneResult:
    """Find the cheapest recipe meeting ``target_fraction`` of the
    accelerator-bound target for *every* given workload.

    Returns the full candidate list (worst-workload fraction per point)
    so callers can inspect the cost/performance frontier.
    """
    if not workloads:
        raise ConfigError("need at least one workload")
    if not 0 < target_fraction <= 1:
        raise ConfigError("target_fraction must be in (0, 1]")
    if n_accelerators <= 0:
        raise ConfigError("n_accelerators must be positive")
    base_hw = base_hw or HardwareConfig()

    candidates: List[Candidate] = []
    for fpgas in fpga_options:
        for ssds in ssd_options:
            for gen in gen_options:
                hw = dataclasses.replace(
                    base_hw, fpgas_per_train_box=fpgas, ssds_per_train_box=ssds
                )
                arch = dataclasses.replace(
                    ArchitectureConfig.trainbox(),
                    pcie_gen=gen,
                    name=f"trainbox[{fpgas}f/{ssds}s/{gen.name}]",
                )
                for pool in pool_options:
                    worst = 1.0
                    worst_bottleneck = "accelerator"
                    for workload in workloads:
                        result = simulate(
                            TrainingScenario(
                                workload, arch, n_accelerators,
                                hw=hw, pool_size=pool,
                            )
                        )
                        fraction = result.throughput / (
                            n_accelerators * workload.sample_rate
                        )
                        if fraction < worst:
                            worst = fraction
                            worst_bottleneck = result.bottleneck
                    import math

                    boxes = math.ceil(n_accelerators / base_hw.accs_per_box)
                    bom = trainbox_bom(
                        n_accelerators,
                        prices=prices,
                        fpgas_per_box=fpgas,
                        ssds_per_box=ssds,
                        pool_fpgas=pool,
                    )
                    # Gen4 switches/links carry a cost premium.
                    capex = bom.total
                    if gen is PcieGen.GEN4:
                        capex += boxes * 4 * prices.pcie_switch  # premium parts
                    candidates.append(
                        Candidate(
                            fpgas_per_box=fpgas,
                            ssds_per_box=ssds,
                            pcie_gen=gen,
                            pool_fpgas=pool,
                            achieved_fraction=worst,
                            capex=capex,
                            bottleneck=worst_bottleneck,
                        )
                    )

    feasible = [c for c in candidates if c.achieved_fraction >= target_fraction]
    if feasible:
        best = min(feasible, key=lambda c: (c.capex, -c.achieved_fraction))
    else:
        # Nothing meets target: return the best-performing point.
        best = max(candidates, key=lambda c: (c.achieved_fraction, -c.capex))
    return AutotuneResult(
        best=best, candidates=tuple(candidates), target=target_fraction
    )
