"""The analytical steady-state throughput solver.

The training pipeline overlaps data preparation of the next batch with
computation + synchronization of the current one (next-batch prefetch,
§II-B), so in steady state:

    system throughput = min(prep capacity, consume capacity)

Consume capacity is ``n · B / (t_compute(B) + t_sync(n, M))``.  Prep
capacity is the min over every resource on the preparation datapath, each
priced by :mod:`repro.core.dataflow`:

* host CPU cycles, host memory bytes (finite host budgets);
* the PCIe fabric: the per-sample flow set routed over the real topology,
  whose busiest directed link sets the pace;
* SSD media bandwidth, prep-device compute, the Ethernet prep network,
  and per-accelerator ingest DMA.

This is the paper's own methodology (§VI-A): "as training is throughput
oriented, the impact of latency variations on the overall throughput is
small thanks to pipelining/next-batch prefetching".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.errors import ConfigError, SimulationError
from repro.core.config import (
    ArchitectureConfig,
    HardwareConfig,
    SyncStrategy,
)
from repro.core.dataflow import (
    DataflowDemand,
    build_demand,
    build_demand_cached,
)
from repro.core.results import SimulationResult
from repro.core.server import ServerModel, build_server
from repro.pcie.traffic import bottleneck_link, completion_time, price_flows
from repro.sync.model import (
    CentralSyncModel,
    RingSyncModel,
    SyncModel,
    TreeSyncModel,
)
from repro.workloads.registry import Workload


@dataclass(frozen=True)
class TrainingScenario:
    """One simulation request.

    ``batch_size`` defaults to the workload's Table I batch;
    ``accelerator`` selects "tpu" (Table I rates) or "legacy-gpu" (the
    Figure 3 "Current platform" Titan-XP-class device);
    ``fabric_bandwidth`` overrides the accelerator-interconnect speed
    (Figure 3's +ICN step).
    """

    workload: Workload
    arch: ArchitectureConfig
    n_accelerators: int
    batch_size: Optional[int] = None
    hw: Optional[HardwareConfig] = None
    accelerator: str = "tpu"
    fabric_bandwidth: Optional[float] = None
    pool_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_accelerators <= 0:
            raise ConfigError("n_accelerators must be positive")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.accelerator not in ("tpu", "legacy-gpu"):
            raise ConfigError(f"unknown accelerator {self.accelerator!r}")


def make_sync_model(
    strategy: SyncStrategy, bandwidth: float
) -> SyncModel:
    """Instantiate the synchronization model for a strategy."""
    if strategy is SyncStrategy.RING:
        return RingSyncModel(bandwidth=bandwidth)
    if strategy is SyncStrategy.TREE:
        return TreeSyncModel(bandwidth=bandwidth)
    return CentralSyncModel(bandwidth=bandwidth)


#: Resource columns of the prep-side rate table, in the dict insertion
#: order :func:`resource_rate_table` produces them — the batch kernel's
#: matrix columns follow this order so its argmin reproduces the scalar
#: first-minimal bottleneck tie-break.
RESOURCE_ORDER = (
    "host_cpu",
    "host_memory",
    "pcie",
    "ssd",
    "prep_compute",
    "prep_network",
    "accelerator_ingest",
)


def resource_rate_table(
    server: ServerModel,
    demand: DataflowDemand,
    pcie_time: Optional[float] = None,
    ssd_rate: Optional[float] = None,
) -> Dict[str, float]:
    """The per-resource rate table (keys follow :data:`RESOURCE_ORDER`).

    ``pcie_time`` lets callers that already priced the PCIe flow set
    (the single-pass cache below, the batch kernel's incidence pricing)
    skip the routing pass; ``ssd_rate`` likewise accepts a precomputed
    per-drive media rate (the batch kernel's bincount accounting).  When
    omitted both are derived here from the flow set.
    """
    hw = server.hw
    rates: Dict[str, float] = {}

    cycles = demand.total_cpu_cycles
    rates["host_cpu"] = (
        server.cpu.cycle_budget / cycles if cycles > 0 else math.inf
    )
    mem = demand.total_mem_bytes
    rates["host_memory"] = (
        server.dram.bandwidth / mem if mem > 0 else math.inf
    )

    per_sample_pcie = (
        completion_time(server.topology, demand.pcie_flows)
        if pcie_time is None
        else pcie_time
    )
    rates["pcie"] = 1.0 / per_sample_pcie if per_sample_pcie > 0 else math.inf

    # SSD media: price each drive against the volume the flow set
    # actually sources from it, so unbalanced layouts (e.g. a degraded
    # box running on one surviving SSD) are charged correctly.
    if ssd_rate is not None:
        rates["ssd"] = ssd_rate
    else:
        ssd_set = set(server.ssd_ids)
        per_ssd: Dict[str, float] = {}
        for flow in demand.pcie_flows:
            if flow.src in ssd_set and flow.volume > 0:
                per_ssd[flow.src] = per_ssd.get(flow.src, 0.0) + flow.volume
        if per_ssd:
            rates["ssd"] = min(
                server.ssd_of(sid).read_bandwidth / volume
                for sid, volume in per_ssd.items()
            )
        elif demand.ssd_read_bytes > 0:
            rates["ssd"] = (
                server.aggregate_ssd_bandwidth() / demand.ssd_read_bytes
            )
        else:
            rates["ssd"] = math.inf

    rates["prep_compute"] = demand.prep_device_rate

    if demand.ethernet_flows and server.prep_network is not None:
        eth_time = server.prep_network.completion_time(demand.ethernet_flows)
        rates["prep_network"] = 1.0 / eth_time if eth_time > 0 else math.inf
    else:
        rates["prep_network"] = math.inf

    # Per-accelerator ingest DMA: each device absorbs its share.
    per_acc_bytes = demand.bytes_to_accelerator / demand.n_accelerators
    rates["accelerator_ingest"] = (
        demand.n_accelerators * hw.accelerator_ingest_bandwidth
        / demand.bytes_to_accelerator
        if demand.bytes_to_accelerator > 0
        else math.inf
    )
    del per_acc_bytes
    return rates


@obs.profiled("analytical.prep_capacity", cat="engine")
def prep_capacity(
    server: ServerModel,
    demand: DataflowDemand,
    pcie_time: Optional[float] = None,
) -> Tuple[float, Dict[str, float]]:
    """Preparation-side throughput and the per-resource rate table."""
    rates = resource_rate_table(server, demand, pcie_time=pcie_time)
    rate = min(rates.values())
    if rate <= 0:
        raise SimulationError(f"non-positive prep rate: {rates}")
    return rate, rates


def _prep_entry(
    server: ServerModel, workload
) -> Tuple[float, Dict[str, float], str]:
    """Memoized (rate, rate table, pcie bottleneck link) for a pair.

    One ``link_loads`` pass prices both the per-sample PCIe time and the
    bottleneck-link name (they used to be re-derived separately per
    simulate() call, re-routing the whole flow set each time).
    """
    key = ("prep_capacity", workload.name)
    memo = server.derived
    if key not in memo:
        demand = build_demand_cached(server, workload)
        per_sample, worst = price_flows(server.topology, demand.pcie_flows)
        rate, rates = prep_capacity(server, demand, pcie_time=per_sample)
        memo[key] = (rate, rates, str(worst) if worst is not None else "")
    return memo[key]  # type: ignore[return-value]


def prep_capacity_cached(
    server: ServerModel, workload
) -> Tuple[float, Dict[str, float]]:
    """Per-server memo of :func:`prep_capacity` for a workload's demand.

    Flow routing over the topology dominates the per-point solver cost;
    a sweep asks for the same ``(server, workload)`` capacity from both
    engines.  The rate table is returned as a fresh copy so callers may
    keep or annotate it without corrupting the memo.
    """
    rate, rates, _ = _prep_entry(server, workload)
    return rate, dict(rates)


def pcie_bottleneck_cached(server: ServerModel, workload) -> str:
    """Memoized bottleneck-link name for a pair (priced together with
    :func:`prep_capacity_cached` in a single routing pass)."""
    return _prep_entry(server, workload)[2]


def pcie_bottleneck_link(server: ServerModel, demand: DataflowDemand) -> str:
    """Human-readable id of the busiest directed PCIe link for a demand
    (what a ``bottleneck == "pcie"`` result actually means)."""
    worst = bottleneck_link(server.topology, demand.pcie_flows)
    return str(worst[0]) if worst else ""


def simulate(
    scenario: TrainingScenario, server: Optional[ServerModel] = None
) -> SimulationResult:
    """Run the analytical model for one scenario.

    Pass a prebuilt ``server`` to amortize topology construction across a
    sweep (it must match the scenario's architecture and scale).
    """
    workload = scenario.workload
    hw = scenario.hw or HardwareConfig()
    if server is None:
        with obs.span("analytical.build_server", cat="engine"):
            server = build_server(
                scenario.arch,
                scenario.n_accelerators,
                hw=hw,
                pool_size=scenario.pool_size,
            )
    elif server.n_accelerators != scenario.n_accelerators:
        raise ConfigError(
            f"server has {server.n_accelerators} accelerators, scenario "
            f"wants {scenario.n_accelerators}"
        )

    with obs.span("analytical.price_demand", cat="engine"):
        prep_rate, resource_rates = prep_capacity_cached(server, workload)

    batch = scenario.batch_size or workload.batch_size
    with obs.span("analytical.solve", cat="engine"):
        if scenario.accelerator == "tpu":
            spec = workload.accelerator_spec()
        else:
            spec = workload.legacy_accelerator_spec()
        compute_time = spec.compute_time(batch)

        fabric = scenario.fabric_bandwidth or hw.accelerator_fabric_bandwidth
        sync_model = make_sync_model(scenario.arch.sync, fabric)
        sync_time = sync_model.time(
            scenario.n_accelerators, workload.model_bytes
        )

        consume_rate = (
            scenario.n_accelerators * batch / (compute_time + sync_time)
        )
        throughput = min(prep_rate, consume_rate)
        if prep_rate < consume_rate:
            bottleneck = min(resource_rates, key=resource_rates.get)
            if bottleneck == "pcie":
                link = pcie_bottleneck_cached(server, workload)
                if link:
                    bottleneck = f"pcie ({link})"
        else:
            bottleneck = "accelerator"

    result = SimulationResult(
        workload_name=workload.name,
        arch_name=scenario.arch.name,
        n_accelerators=scenario.n_accelerators,
        batch_size=batch,
        throughput=throughput,
        prep_rate=prep_rate,
        consume_rate=consume_rate,
        bottleneck=bottleneck,
        compute_time=compute_time,
        sync_time=sync_time,
        resource_rates=resource_rates,
    )
    obs.inc("engine.analytical.runs")
    obs.observe("engine.analytical.throughput", throughput)
    tracer = obs.current_tracer()
    if tracer is not None:
        emit_iteration_trace(tracer, result)
    return result


def emit_iteration_trace(tracer, result: SimulationResult) -> None:
    """One steady-state iteration on the model-time track.

    The top-level ``iteration`` span has duration ``iteration_time``
    exactly; its children decompose it into compute, sync and (when the
    scenario is prep-bound) the stall the accelerators spend waiting on
    data — so a trace's span totals always reconcile with the reported
    numbers.
    """
    it = result.iteration_time
    tracer.add_model_span(
        "iteration", 0.0, it,
        cat=obs.ITERATION_CATEGORY,
        bottleneck=result.bottleneck,
        throughput=result.throughput,
    )
    tracer.add_model_span(
        "compute", 0.0, result.compute_time, cat="phase", depth=1
    )
    tracer.add_model_span(
        "sync",
        result.compute_time,
        result.compute_time + result.sync_time,
        cat="phase",
        depth=1,
    )
    busy = result.compute_time + result.sync_time
    if it > busy * (1 + 1e-12):
        tracer.add_model_span(
            "prep_stall", busy, it, cat="phase", depth=1,
            bottleneck=result.bottleneck,
        )
