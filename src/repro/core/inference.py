"""Inference serving on the same architectures (§II-A).

The paper focuses on training "although our insight is generally
applicable to the inference as well."  This module checks that claim:
inference removes synchronization and the backward pass (forward-only
compute is ≈3× faster per sample), which *raises* per-accelerator sample
demand and makes the data-preparation wall hit even earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError
from repro.core.analytical import prep_capacity
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.core.dataflow import build_demand
from repro.core.results import SimulationResult
from repro.core.server import ServerModel, build_server
from repro.workloads.registry import Workload

#: forward+backward ≈ 3× forward: dropping the backward pass gives the
#: accelerator roughly this throughput multiplier for inference.
FORWARD_ONLY_SPEEDUP = 3.0


@dataclass(frozen=True)
class InferenceScenario:
    """A batched-inference serving job."""

    workload: Workload
    arch: ArchitectureConfig
    n_accelerators: int
    batch_size: Optional[int] = None
    hw: Optional[HardwareConfig] = None

    def __post_init__(self) -> None:
        if self.n_accelerators <= 0:
            raise ConfigError("n_accelerators must be positive")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")


def simulate_inference(
    scenario: InferenceScenario, server: Optional[ServerModel] = None
) -> SimulationResult:
    """Steady-state inference throughput: no synchronization, forward-only
    compute, identical preparation datapath."""
    workload = scenario.workload
    hw = scenario.hw or HardwareConfig()
    if server is None:
        server = build_server(scenario.arch, scenario.n_accelerators, hw=hw)
    elif server.n_accelerators != scenario.n_accelerators:
        raise ConfigError("server scale does not match the scenario")

    demand = build_demand(server, workload)
    prep_rate, resource_rates = prep_capacity(server, demand)

    # Inference typically serves smaller batches; default to 1/16 of the
    # training batch (still large enough to amortize the device).
    batch = scenario.batch_size or max(1, workload.batch_size // 16)
    spec = workload.accelerator_spec()
    forward_spec = replace(
        spec,
        name=spec.name + "/inference",
        sample_rate=spec.sample_rate * FORWARD_ONLY_SPEEDUP,
    )
    compute_time = forward_spec.compute_time(batch)
    consume_rate = scenario.n_accelerators * batch / compute_time

    throughput = min(prep_rate, consume_rate)
    if prep_rate < consume_rate:
        bottleneck = min(resource_rates, key=resource_rates.get)
        if bottleneck == "pcie":
            from repro.core.analytical import pcie_bottleneck_link

            link = pcie_bottleneck_link(server, demand)
            if link:
                bottleneck = f"pcie ({link})"
    else:
        bottleneck = "accelerator"
    return SimulationResult(
        workload_name=workload.name,
        arch_name=scenario.arch.name + "/inference",
        n_accelerators=scenario.n_accelerators,
        batch_size=batch,
        throughput=throughput,
        prep_rate=prep_rate,
        consume_rate=consume_rate,
        bottleneck=bottleneck,
        compute_time=compute_time,
        sync_time=0.0,
        resource_rates=resource_rates,
    )
