"""Per-architecture datapaths → per-sample resource demands.

For each architecture the module answers: when one training sample moves
from storage to an accelerator, how many host-CPU cycles, host-memory
bytes, PCIe link-bytes (as routed flows on the real topology), SSD media
bytes, prep-device cycles and Ethernet bytes does it cost — and which
*category* does each contribution belong to (the categories of
Figures 11 and 22: SSD read, data formatting, data augmentation, data
load, data copy, others)?

The paper's three optimizations are visible directly in the flow sets:

* Baseline stages everything through host DRAM, so the RC carries the
  compressed input up and the prepared batch down, and the CPU pays for
  the whole pipeline.
* +Acc reroutes compute to prep boxes but *doubles* RC traffic
  (SSD→host→prep→host→accelerator, §IV-D).
* +P2P removes the DRAM staging (memory drops to ~0) but the prep boxes
  are still siblings of the accelerator boxes, so every byte still
  crosses the RC — which is why P2P alone does not help throughput
  (§VI-C).
* Clustering co-locates the datapath under one box switch: the flows'
  lowest common ancestors drop below the RC and the chain links empty
  out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cache import memoized
from repro.errors import ConfigError
from repro.core.config import ArchitectureConfig, PrepDevice
from repro.core.server import ServerModel
from repro.dataprep.cost import (
    DeviceProfile,
    PipelineCost,
    profile_by_name,
)
from repro.network.ethernet import EthernetFlow
from repro.network.preppool import pool_fpgas_needed
from repro.pcie.traffic import Flow
from repro.workloads.registry import Workload

# Categories used in the paper's resource-decomposition figures.
CATEGORIES = (
    "ssd_read",
    "formatting",
    "augmentation",
    "data_load",
    "data_copy",
    "others",
)

#: Op kinds that count as formatting vs augmentation (Figure 17's two
#: engines: Decoder/Crop/Spectrogram/Mel format; the rest augment).
FORMATTING_KINDS = ("decode", "crop", "spectrogram", "mel")
AUGMENTATION_KINDS = ("mirror", "noise", "cast", "masking", "norm")

#: Host cycles per staged copy per sample (DMA descriptor setup, buffer
#: management).
COPY_MGMT_CYCLES = 3_000.0

#: Framework/scheduler cycles per sample in the baseline software stack.
OTHERS_CYCLES_BASELINE = 20_000.0

#: The same after TrainBox removes most user/kernel switching (§V-A).
OTHERS_CYCLES_OFFLOADED = 4_000.0


@dataclass
class DataflowDemand:
    """Everything one sample costs, split by resource and category."""

    workload: Workload
    arch: ArchitectureConfig
    n_accelerators: int

    cpu_cycles: Dict[str, float]
    mem_bytes: Dict[str, float]
    pcie_flows: List[Flow]
    ethernet_flows: List[EthernetFlow]

    ssd_read_bytes: float
    bytes_to_accelerator: float
    pipeline_cost: PipelineCost

    prep_profile: DeviceProfile
    n_prep_devices: int
    n_pool_devices: int

    #: The server's PCIe topology, kept for flow routing/accounting.
    topology: object = field(default=None, repr=False)

    @property
    def total_cpu_cycles(self) -> float:
        return sum(self.cpu_cycles.values())

    @property
    def total_mem_bytes(self) -> float:
        return sum(self.mem_bytes.values())

    @property
    def prep_device_rate(self) -> float:
        """Aggregate samples/s the prep devices (incl. pool) can compute."""
        if self.prep_profile.name == "cpu-core":
            return math.inf  # priced through cpu_cycles instead
        per_device = self.prep_profile.sample_rate(self.pipeline_cost)
        return (self.n_prep_devices + self.n_pool_devices) * per_device

    def rc_bytes_per_sample(self, by_category: bool = False):
        """Per-sample traffic on the links adjacent to the root complex,
        both directions summed — the Figure 10c quantity.

        Counting *directed RC-port loads* (rather than flows that merely
        mention the RC) is what exposes the paper's P2P finding: a P2P
        flow SSD→prep loads one RC port up and another down, exactly like
        the two staged copies it replaces, so P2P alone leaves RC
        pressure unchanged (§VI-C).  With ``by_category`` returns a
        ``{category: bytes}`` dict instead of the total.
        """
        from repro.pcie.routing import route

        totals: Dict[str, float] = {}
        root_id = self.topology.root.node_id
        for flow in self.pcie_flows:
            if flow.src == flow.dst:
                continue
            label = flow.label or "others"
            for hop in route(self.topology, flow.src, flow.dst):
                if hop.link.parent_id == root_id:
                    totals[label] = totals.get(label, 0.0) + flow.volume
        if by_category:
            return totals
        return sum(totals.values())


def _split_pipeline(cost: PipelineCost) -> Tuple[PipelineCost, PipelineCost]:
    return cost.split(FORMATTING_KINDS), cost.split(AUGMENTATION_KINDS)


def workload_cost_cached(workload: Workload):
    """Global memo of a workload's pipeline-cost bundle.

    ``(sample spec, pipeline cost, formatting split, augmentation
    split)`` depend only on the Table I row, yet every
    :func:`build_demand` call used to re-derive them from scratch — the
    dominant shared cost of a cold sweep after server construction.  The
    memo lives in :mod:`repro.cache`'s in-process table (keyed by the
    frozen workload row, like ``build_server_cached``) and its values
    are read-only by convention.
    """

    def build():
        sample_spec = workload.dataset_sample_spec()
        cost = workload.prep_pipeline().cost(sample_spec)
        fmt, aug = _split_pipeline(cost)
        return sample_spec, cost, fmt, aug

    return memoized(("workload_cost", workload), build)


#: A PCIe flow before materialization: (src, dst, volume, label).
FlowSpec = Tuple[str, str, float, str]


def _demand_parts(server: ServerModel, workload: Workload):
    """Everything :func:`build_demand` derives, with PCIe flows as raw
    :data:`FlowSpec` tuples instead of :class:`Flow` objects.

    Split out so the batch kernel (:mod:`repro.core.analytical_batch`)
    can price a demand without allocating the flow objects it never
    routes — the volumes here are computed by exactly the expressions
    the materialized flows carry, which is what keeps the two paths
    bit-identical.
    """
    arch = server.arch
    n = server.n_accelerators
    sample_spec, cost, fmt, aug = workload_cost_cached(workload)
    compressed = sample_spec.nbytes
    prepared = cost.bytes_out

    cpu: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
    mem: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
    flows: List[FlowSpec] = []
    eth_flows: List[EthernetFlow] = []
    acc_ids = server.acc_ids
    ssd_ids = server.ssd_ids
    prep_ids = server.prep_ids

    # NVMe driver cost: any SSD object works, they are homogeneous.
    driver_cycles = server.ssd_of(ssd_ids[0]).host_driver_cycles(compressed)

    profile = profile_by_name(
        "cpu-core"
        if arch.prep_device is PrepDevice.CPU
        else arch.prep_device.value
    )
    n_pool = 0

    if arch.prep_device is PrepDevice.CPU:
        # ---- Baseline: everything through the host -------------------
        cpu["ssd_read"] = driver_cycles
        cpu["formatting"] = fmt.cpu_cycles
        cpu["augmentation"] = aug.cpu_cycles
        cpu["data_load"] = COPY_MGMT_CYCLES
        cpu["others"] = OTHERS_CYCLES_BASELINE

        mem["ssd_read"] = compressed           # DMA write into DRAM
        mem["formatting"] = fmt.mem_traffic
        mem["augmentation"] = aug.mem_traffic
        mem["data_load"] = prepared            # accelerator DMA read

        for sid in ssd_ids:
            flows.append((sid, server.host_id, compressed / len(ssd_ids), "ssd_read"))
        for aid in acc_ids:
            flows.append((server.host_id, aid, prepared / n, "data_load"))

    elif not arch.clustering:
        # ---- B+Acc / B+Acc+P2P / +Gen4 -------------------------------
        if not prep_ids:
            raise ConfigError("prep acceleration requires prep devices")
        cpu["others"] = (
            OTHERS_CYCLES_OFFLOADED if arch.p2p else OTHERS_CYCLES_BASELINE
        )
        if not arch.p2p:
            # Host still drives NVMe and stages both copies.
            cpu["ssd_read"] = driver_cycles
            cpu["data_copy"] = 2 * COPY_MGMT_CYCLES
            cpu["data_load"] = COPY_MGMT_CYCLES

            mem["ssd_read"] = compressed
            mem["data_copy"] = compressed + prepared  # DRAM→prep, prep→DRAM
            mem["data_load"] = prepared

            for sid in ssd_ids:
                flows.append((sid, server.host_id, compressed / len(ssd_ids), "ssd_read"))
            for pid in prep_ids:
                flows.append((server.host_id, pid, compressed / len(prep_ids), "data_copy"))
                flows.append((pid, server.host_id, prepared / len(prep_ids), "data_copy"))
            for aid in acc_ids:
                flows.append((server.host_id, aid, prepared / n, "data_load"))
        else:
            # P2P: SSD→prep and prep→accelerator directly; the host only
            # orchestrates.  The flows still climb to the RC because the
            # boxes are type-grouped siblings.
            share = compressed / (len(prep_ids) * len(ssd_ids))
            for pid in prep_ids:
                for sid in ssd_ids:
                    flows.append((sid, pid, share, "ssd_read"))
            for i, aid in enumerate(acc_ids):
                pid = prep_ids[i % len(prep_ids)]
                flows.append((pid, aid, prepared / n, "data_load"))

    else:
        # ---- TrainBox: clustered boxes, optional prep-pool -----------
        per_fpga_rate = profile.sample_rate(cost)
        required_rate = n * workload.sample_rate
        in_box_rate = len(prep_ids) * per_fpga_rate
        if arch.prep_pool:
            wanted = pool_fpgas_needed(required_rate, in_box_rate, per_fpga_rate)
            n_pool = min(wanted, len(server.pool_fpga_ids))
        cpu["others"] = OTHERS_CYCLES_OFFLOADED

        # Fraction of samples each box must offload to the pool.
        pool_rate = n_pool * per_fpga_rate
        offload_fraction = (
            pool_rate / required_rate if required_rate > 0 else 0.0
        )
        offload_fraction = min(offload_fraction, 1.0)

        for box_index, box in enumerate(server.boxes):
            if not box.acc_ids:
                continue
            box_share = len(box.acc_ids) / n
            n_box_ssd = len(box.ssd_ids)
            n_box_fpga = len(box.prep_ids)
            if not n_box_ssd or not n_box_fpga:
                raise ConfigError(f"train box {box.box_id} missing SSDs or FPGAs")
            for fid in box.prep_ids:
                for sid in box.ssd_ids:
                    flows.append(
                        (
                            sid,
                            fid,
                            compressed * box_share / (n_box_ssd * n_box_fpga),
                            "ssd_read",
                        )
                    )
            for i, aid in enumerate(box.acc_ids):
                fid = box.prep_ids[i % n_box_fpga]
                flows.append((fid, aid, prepared / n, "data_load"))
            if offload_fraction > 0 and n_pool:
                for j, fid in enumerate(box.prep_ids):
                    out_vol = compressed * box_share * offload_fraction / n_box_fpga
                    in_vol = prepared * box_share * offload_fraction / n_box_fpga
                    # Deterministic round-robin spread of box FPGAs over
                    # pool FPGAs (str hash() is process-randomized and
                    # would make Ethernet loads vary across runs).
                    pool_id = server.pool_fpga_ids[
                        (box_index * n_box_fpga + j) % n_pool
                    ]
                    eth_flows.append(EthernetFlow(fid, pool_id, out_vol))
                    eth_flows.append(EthernetFlow(pool_id, fid, in_vol))

    return cpu, mem, flows, eth_flows, compressed, prepared, cost, profile, n_pool


def _assemble_demand(
    server: ServerModel, workload: Workload, parts, pcie_flows: List[Flow]
) -> DataflowDemand:
    cpu, mem, _, eth_flows, compressed, prepared, cost, profile, n_pool = parts
    return DataflowDemand(
        workload=workload,
        arch=server.arch,
        n_accelerators=server.n_accelerators,
        cpu_cycles=cpu,
        mem_bytes=mem,
        pcie_flows=pcie_flows,
        ethernet_flows=eth_flows,
        ssd_read_bytes=compressed,
        bytes_to_accelerator=prepared,
        pipeline_cost=cost,
        prep_profile=profile,
        n_prep_devices=len(server.prep_ids),
        n_pool_devices=n_pool,
        topology=server.topology,
    )


def build_demand(
    server: ServerModel, workload: Workload
) -> DataflowDemand:
    """Per-sample demand of running ``workload`` on ``server``."""
    parts = _demand_parts(server, workload)
    flows = [
        Flow(src, dst, volume, label=label)
        for src, dst, volume, label in parts[2]
    ]
    return _assemble_demand(server, workload, parts, flows)


def build_demand_lite(
    server: ServerModel, workload: Workload
) -> Tuple[DataflowDemand, List[FlowSpec]]:
    """The demand with PCIe flows as raw specs, not :class:`Flow` objects.

    The returned demand has an **empty** ``pcie_flows`` list — callers
    (the batch kernel) must price PCIe and SSD media from the spec
    tuples and must not hand it to flow-walking code such as
    ``rc_bytes_per_sample`` or an un-overridden ``resource_rate_table``.
    Skipping the ~flow-count frozen-dataclass allocations is a large
    share of a cold batch sweep's demand cost.
    """
    parts = _demand_parts(server, workload)
    return _assemble_demand(server, workload, parts, []), parts[2]


def build_demand_cached(
    server: ServerModel, workload: Workload
) -> DataflowDemand:
    """Per-server memo of :func:`build_demand`.

    A sweep revisits the same ``(workload, arch, scale)`` point through
    both engines (and normalization passes revisit it again), so the
    demand vector is derived once per server instance and workload and
    shared.  The memo lives on the server (``server.derived``), not in a
    global table, so degraded copies made by :mod:`repro.core.faults`
    never alias a healthy server's demand.  Callers must treat the
    shared demand as read-only.
    """
    key = ("demand", workload.name)
    memo = server.derived
    if key not in memo:
        memo[key] = build_demand(server, workload)
    return memo[key]  # type: ignore[return-value]
