"""Declarative sweep execution: grids of simulator runs, cached and
parallel.

Every evaluation figure is some grid — workloads × architectures ×
accelerator counts, run through one of the engines (analytical, DES,
scale-out).  Before this module each benchmark hand-rolled its own
nested loops and recomputed every point on every run.  Here the grid is
*data*:

* :class:`SweepSpec` names the axes; :meth:`SweepSpec.points` expands
  them in deterministic workload-major order (workload, then
  architecture, then scale), so result vectors line up run to run and
  process to process.
* :func:`run_sweep` evaluates the points.  Each point is first looked up
  in an optional persistent :class:`~repro.cache.ResultCache` under a
  content-hash key (:func:`cache_key`) covering everything that
  determines the answer — hardware config, architecture config, workload
  row, scale, engine and engine parameters.  Only misses are computed:
  serially for ``n_jobs=1``, otherwise on a ``ProcessPoolExecutor`` in
  contiguous chunks.  Freshly computed results are written back to the
  cache in the parent process (workers never touch the cache directory,
  so there is nothing to coordinate).
* Results are identical whichever path produced them: the engines are
  deterministic, workers inherit the same code, and cached entries
  round-trip through JSON bit-for-bit (tests pin all three ways).

The in-process memo (:mod:`repro.cache`) sits underneath: server models
and per-server demand vectors are shared across the points of one run.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.errors import ConfigError
from repro.cache import ResultCache, fingerprint
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.core.results import FlowResult, SimulationResult
from repro.core.scaleout import (
    ScaleOutConfig,
    ScaleOutResult,
    simulate_scaleout,
)
from repro.core.server import build_server_cached
from repro.workloads.registry import Workload

#: The accelerator counts the scalability figures sweep.
SCALE_LADDER = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Engines a sweep point may request.
ENGINES = ("analytical", "des", "flow", "scaleout")

#: Reusable no-op context for paths that run without a metrics session.
_NULL_CTX = contextlib.nullcontext()


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: everything one engine invocation needs.

    ``scale`` is the accelerator count for the analytical/DES engines
    and the node count for ``scaleout``.  ``arch`` is unused by
    ``scaleout`` (the cluster is described by ``scaleout_config``).
    """

    workload: Workload
    arch: Optional[ArchitectureConfig]
    scale: int
    engine: str = "analytical"
    batch_size: Optional[int] = None
    hw: Optional[HardwareConfig] = None
    pool_size: Optional[int] = None
    accelerator: str = "tpu"
    fabric_bandwidth: Optional[float] = None
    scaleout_config: Optional[ScaleOutConfig] = None
    des_iterations: int = 60
    des_buffer_batches: int = 4

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.engine != "scaleout" and self.arch is None:
            raise ConfigError(f"engine {self.engine!r} needs an architecture")


@dataclass(frozen=True)
class SweepSpec:
    """A full grid, expanded lazily in deterministic order."""

    workloads: Tuple[Workload, ...]
    archs: Tuple[Optional[ArchitectureConfig], ...]
    scales: Tuple[int, ...] = SCALE_LADDER
    engine: str = "analytical"
    batch_size: Optional[int] = None
    hw: Optional[HardwareConfig] = None
    pool_size: Optional[int] = None
    accelerator: str = "tpu"
    fabric_bandwidth: Optional[float] = None
    scaleout_config: Optional[ScaleOutConfig] = None
    des_iterations: int = 60
    des_buffer_batches: int = 4

    def __post_init__(self) -> None:
        if not self.workloads or not self.archs or not self.scales:
            raise ConfigError("sweep axes must be non-empty")

    def points(self) -> List[SweepPoint]:
        """Workload-major, then architecture, then ascending scale."""
        return [
            SweepPoint(
                workload=w,
                arch=a,
                scale=s,
                engine=self.engine,
                batch_size=self.batch_size,
                hw=self.hw,
                pool_size=self.pool_size,
                accelerator=self.accelerator,
                fabric_bandwidth=self.fabric_bandwidth,
                scaleout_config=self.scaleout_config,
                des_iterations=self.des_iterations,
                des_buffer_batches=self.des_buffer_batches,
            )
            for w in self.workloads
            for a in self.archs
            for s in self.scales
        ]


def cache_key(point: SweepPoint) -> str:
    """Content-hash key for a point's result.

    The whole point dataclass is fingerprinted — every nested config
    field participates, so changing any of them (a bandwidth, a sync
    strategy, a Table I rate) can never serve a stale entry.  ``hw`` and
    ``scaleout_config`` are normalized to their defaults first so that
    "no override" and "explicit default" hash alike.
    """
    hw = point.hw or HardwareConfig()
    scaleout = (
        (point.scaleout_config or ScaleOutConfig())
        if point.engine == "scaleout"
        else None
    )
    return fingerprint(
        "sweep-point",
        point.engine,
        point.workload,
        point.arch,
        point.scale,
        point.batch_size,
        hw,
        point.pool_size,
        point.accelerator,
        point.fabric_bandwidth,
        scaleout,
        point.des_iterations if point.engine == "des" else None,
        point.des_buffer_batches if point.engine == "des" else None,
    )


def evaluate_point(
    point: SweepPoint,
) -> Union[SimulationResult, "DesResult", ScaleOutResult]:
    """Run one point through its engine (module-level: pool workers
    import it by name)."""
    if point.engine == "scaleout":
        return simulate_scaleout(
            point.workload, point.scale, config=point.scaleout_config
        )
    server = build_server_cached(
        point.arch, point.scale, hw=point.hw, pool_size=point.pool_size
    )
    scenario = TrainingScenario(
        workload=point.workload,
        arch=point.arch,
        n_accelerators=point.scale,
        batch_size=point.batch_size,
        hw=point.hw,
        accelerator=point.accelerator,
        fabric_bandwidth=point.fabric_bandwidth,
        pool_size=point.pool_size,
    )
    if point.engine == "des":
        from repro.core.des import simulate_des

        return simulate_des(
            scenario,
            server=server,
            iterations=point.des_iterations,
            buffer_batches=point.des_buffer_batches,
        )
    if point.engine == "flow":
        from repro.core.flowengine import simulate_flow

        return simulate_flow(scenario, server=server)
    return simulate(scenario, server=server)


def evaluate_point_metered(point: SweepPoint) -> Tuple[object, Dict]:
    """Evaluate one point under a fresh metrics registry.

    Module-level so pool workers import it by name.  Each point's model
    counters are collected hermetically and returned alongside the
    result, so the parent can fold child manifests in point order and
    obtain the *same* aggregate whether points ran serially in-process
    or fanned out over workers (a test pins parallel == serial).
    """
    registry = obs.MetricsRegistry()
    with obs.session(metrics=registry):
        result = evaluate_point(point)
    return result, registry.to_manifest()


def _result_from_dict(engine: str, data: dict):
    if engine == "analytical":
        return SimulationResult.from_dict(data)
    if engine == "des":
        from repro.core.des import DesResult

        return DesResult.from_dict(data)
    if engine == "flow":
        return FlowResult.from_dict(data)
    return ScaleOutResult.from_dict(data)


@dataclass
class SweepOutcome:
    """Results aligned index-for-index with the evaluated points.

    ``manifest`` is the merged observability run manifest (counters +
    histograms across every evaluated point, cache layer included) when
    the sweep ran with metrics collection, else ``None``.

    ``dispatch`` records, per point, which execution path produced the
    result: ``"cache"``, ``"batch"`` (the vectorized kernel), or
    ``"scalar (<reason>)"`` for per-point evaluation, with the reason
    the batch kernel gave for not taking the point.
    ``batch_points``/``batch_fallbacks`` summarize the same split.
    """

    points: Tuple[SweepPoint, ...]
    results: Tuple[object, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    manifest: Optional[Dict] = None
    batch_points: int = 0
    batch_fallbacks: int = 0
    dispatch: Tuple[str, ...] = ()

    def __iter__(self):
        return iter(zip(self.points, self.results))

    def __len__(self) -> int:
        return len(self.points)

    def by_key(self) -> Dict[Tuple[str, Optional[str], int], object]:
        """Index results as ``(workload name, arch name, scale)``."""
        return {
            (p.workload.name, p.arch.name if p.arch else None, p.scale): r
            for p, r in zip(self.points, self.results)
        }

    def curve(
        self, workload_name: str, arch_name: Optional[str]
    ) -> List[object]:
        """The results for one (workload, arch) in ascending scale order."""
        rows = [
            (p.scale, r)
            for p, r in zip(self.points, self.results)
            if p.workload.name == workload_name
            and (p.arch.name if p.arch else None) == arch_name
        ]
        rows.sort(key=lambda item: item[0])
        return [r for _, r in rows]


def run_sweep(
    spec: Union[SweepSpec, Sequence[SweepPoint]],
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
    metrics: Union[None, bool, "obs.MetricsRegistry"] = None,
    batch: Union[bool, str] = "auto",
) -> SweepOutcome:
    """Evaluate a grid, serving cached points and computing the rest.

    Cache misses first go through the vectorized batch kernel
    (:func:`repro.core.analytical_batch.evaluate_grid`), which evaluates
    every analytical point it can express in structure-of-arrays passes
    with bit-identical results; only the points it declines (other
    engines, unregistered sync strategies, an active tracer) reach the
    per-point path.  ``batch=False`` forces everything scalar.

    ``n_jobs=1`` runs the scalar remainder serially in-process; higher
    values fan it out over a process pool in contiguous chunks.  The
    point order of the outcome never depends on ``n_jobs``, ``batch``,
    or the cache state.

    ``metrics`` turns on observability aggregation: pass ``True`` (a
    fresh registry) or an existing :class:`~repro.obs.MetricsRegistry`.
    The batch kernel emits into the parent registry directly; every
    scalar point is evaluated under a hermetic child registry —
    in-process or in a pool worker alike — and the children are merged
    into the parent in point-index order, so the outcome's ``manifest``
    is identical whichever execution path ran (parallel == serial, a
    test pins it).  Cache-layer counters accrue in the parent, where the
    cache lives.
    """
    points = list(spec.points() if isinstance(spec, SweepSpec) else spec)
    if n_jobs < 1:
        raise ConfigError("n_jobs must be >= 1")
    registry: Optional[obs.MetricsRegistry]
    if metrics is None or metrics is False:
        registry = None
    elif metrics is True:
        registry = obs.MetricsRegistry()
    else:
        registry = metrics
    results: List[object] = [None] * len(points)
    dispatch: List[str] = ["cache"] * len(points)
    batch_points = 0
    batch_fallbacks = 0

    parent_session = (
        obs.session(metrics=registry) if registry is not None else None
    )
    with parent_session or _NULL_CTX:
        with obs.span("sweep.run", cat="sweep", points=len(points)):
            pending: List[int] = []
            hits = 0
            if cache is not None:
                with obs.span("sweep.cache_scan", cat="sweep"):
                    for idx, point in enumerate(points):
                        payload = cache.get(cache_key(point))
                        if payload is None:
                            pending.append(idx)
                        else:
                            results[idx] = _result_from_dict(
                                point.engine, payload
                            )
                            hits += 1
            else:
                pending = list(range(len(points)))
            obs.inc("sweep.points", len(points))
            obs.inc("sweep.cache_hits", hits)
            obs.inc("sweep.cache_misses", len(pending))

            scalar_pending = pending
            if pending and batch:
                from repro.core.analytical_batch import evaluate_grid

                batched, reasons = evaluate_grid(
                    [points[i] for i in pending]
                )
                scalar_pending = []
                for k, idx in enumerate(pending):
                    if batched[k] is not None:
                        results[idx] = batched[k]
                        dispatch[idx] = "batch"
                        batch_points += 1
                        if cache is not None:
                            cache.put(
                                cache_key(points[idx]), batched[k].to_dict()
                            )
                    else:
                        scalar_pending.append(idx)
                        dispatch[idx] = f"scalar ({reasons[k]})"
                batch_fallbacks = len(scalar_pending)
            elif pending:
                for idx in pending:
                    dispatch[idx] = "scalar (batch disabled)"
            obs.inc("sweep.batch_points", batch_points)
            obs.inc("sweep.batch_fallbacks", batch_fallbacks)

            if scalar_pending:
                todo = [points[i] for i in scalar_pending]
                manifests: List[Dict] = []
                if n_jobs == 1 or len(todo) == 1:
                    computed = []
                    for p in todo:
                        with obs.span(
                            "sweep.point", cat="sweep",
                            workload=p.workload.name, scale=p.scale,
                            engine=p.engine,
                        ):
                            if registry is not None:
                                result, manifest = evaluate_point_metered(p)
                                manifests.append(manifest)
                            else:
                                result = evaluate_point(p)
                        computed.append(result)
                else:
                    # Workers are capped by the actual work: never more
                    # than one per remaining point, and with an explicit
                    # chunksize never more than the number of chunks
                    # (an all-hits grid would otherwise spin up a pool
                    # of workers with nothing to map).
                    workers = min(n_jobs, len(todo))
                    if chunksize is None:
                        chunksize = max(1, -(-len(todo) // workers))
                    else:
                        workers = min(
                            workers, max(1, -(-len(todo) // chunksize))
                        )
                    with obs.span(
                        "sweep.pool", cat="sweep",
                        workers=workers, chunksize=chunksize,
                    ):
                        with ProcessPoolExecutor(max_workers=workers) as pool:
                            if registry is not None:
                                metered = list(
                                    pool.map(
                                        evaluate_point_metered,
                                        todo,
                                        chunksize=chunksize,
                                    )
                                )
                                computed = [r for r, _ in metered]
                                manifests = [m for _, m in metered]
                            else:
                                computed = list(
                                    pool.map(
                                        evaluate_point,
                                        todo,
                                        chunksize=chunksize,
                                    )
                                )
                if registry is not None:
                    # Point-index order: the merge is deterministic and
                    # independent of which worker computed what.
                    for manifest in manifests:
                        registry.merge_manifest(manifest)
                for idx, result in zip(scalar_pending, computed):
                    results[idx] = result
                    if cache is not None:
                        cache.put(cache_key(points[idx]), result.to_dict())

    return SweepOutcome(
        points=tuple(points),
        results=tuple(results),
        cache_hits=hits,
        cache_misses=len(pending),
        manifest=registry.to_manifest() if registry is not None else None,
        batch_points=batch_points,
        batch_fallbacks=batch_fallbacks,
        dispatch=tuple(dispatch),
    )


def parallel_map(
    fn: Callable, items: Iterable, n_jobs: int = 1
) -> List[object]:
    """``map`` with the sweep engine's process-pool semantics.

    ``fn`` must be a module-level callable (pool workers import it by
    qualified name); order follows ``items``; ``n_jobs=1`` is a plain
    serial loop, so callers need no special casing.
    """
    items = list(items)
    if n_jobs < 1:
        raise ConfigError("n_jobs must be >= 1")
    if n_jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(n_jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def figure21_spec(hw: Optional[HardwareConfig] = None) -> SweepSpec:
    """The Figure 21 grid: five strategies × two workloads × the scale
    ladder — the benchmark suite's canonical end-to-end sweep."""
    from repro.core.config import PrepDevice
    from repro.workloads.registry import get_workload

    return SweepSpec(
        workloads=(
            get_workload("Inception-v4"),
            get_workload("Transformer-SR"),
        ),
        archs=(
            ArchitectureConfig.baseline(),
            ArchitectureConfig.baseline_acc(PrepDevice.GPU),
            ArchitectureConfig.baseline_acc(),
            ArchitectureConfig.trainbox(prep_pool=False),
            ArchitectureConfig.trainbox(),
        ),
        scales=SCALE_LADDER,
        engine="analytical",
        hw=hw,
    )
