"""Result containers for the simulation engines.

Every engine outcome — analytical, DES, fluid-flow — derives from
:class:`SimulationOutcome`, the shared interface the ``repro.api``
facade promises: the same field names (``throughput``, ``prep_rate``,
``consume_rate``, ``bottleneck``) and the same derived properties
(``prep_bound``, ``iteration_time``, ``speedup_over``) whichever engine
produced the number.  A parametrized conformance test pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


class SimulationOutcome:
    """Mixin giving every engine result the common derived interface.

    Subclasses are frozen dataclasses carrying at least
    ``workload_name``, ``arch_name``, ``n_accelerators``, ``batch_size``,
    ``throughput``, ``prep_rate``, ``consume_rate`` and ``bottleneck``.
    Error messages always carry the scenario identity so a failure deep
    inside a thousand-point sweep is attributable.
    """

    __slots__ = ()

    def scenario_id(self) -> str:
        """``workload/arch@scale`` tag for error messages and manifests."""
        workload = getattr(self, "workload_name", "") or "?"
        arch = getattr(self, "arch_name", "") or "?"
        return f"{workload}/{arch}@n={getattr(self, 'n_accelerators', '?')}"

    @property
    def prep_bound(self) -> bool:
        """True when data preparation limits the system (the paper's
        central observation at scale)."""
        return self.prep_rate < self.consume_rate

    @property
    def iteration_time(self) -> float:
        """Steady-state time per iteration (global batch)."""
        if self.throughput <= 0:
            raise SimulationError(
                f"throughput is zero for {self.scenario_id()}; no steady state"
            )
        return self.n_accelerators * self.batch_size / self.throughput

    def speedup_over(self, other: "SimulationOutcome") -> float:
        if other.throughput <= 0:
            ident = (
                other.scenario_id()
                if isinstance(other, SimulationOutcome)
                else repr(other)
            )
            raise SimulationError(
                f"reference throughput is zero for {ident} "
                f"(comparing against {self.scenario_id()})"
            )
        return self.throughput / other.throughput


@dataclass(frozen=True)
class SimulationResult(SimulationOutcome):
    """Outcome of one analytical simulation run.

    Rates are samples/second; times are seconds.  ``resource_rates`` maps
    every prep-side resource to the throughput it alone would allow, so
    ``prep_rate == min(resource_rates.values())`` and ``bottleneck`` names
    the argmin (or ``"accelerator"`` when the consume side is slower).
    """

    workload_name: str
    arch_name: str
    n_accelerators: int
    batch_size: int

    throughput: float
    prep_rate: float
    consume_rate: float
    bottleneck: str

    compute_time: float
    sync_time: float
    resource_rates: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-encodable form for the persistent result cache.

        Python round-trips floats through JSON exactly (repr-based), so a
        cached result is bit-for-bit the computed one.
        """
        return {
            "workload_name": self.workload_name,
            "arch_name": self.arch_name,
            "n_accelerators": self.n_accelerators,
            "batch_size": self.batch_size,
            "throughput": self.throughput,
            "prep_rate": self.prep_rate,
            "consume_rate": self.consume_rate,
            "bottleneck": self.bottleneck,
            "compute_time": self.compute_time,
            "sync_time": self.sync_time,
            "resource_rates": dict(self.resource_rates),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        return cls(
            workload_name=data["workload_name"],
            arch_name=data["arch_name"],
            n_accelerators=data["n_accelerators"],
            batch_size=data["batch_size"],
            throughput=data["throughput"],
            prep_rate=data["prep_rate"],
            consume_rate=data["consume_rate"],
            bottleneck=data["bottleneck"],
            compute_time=data["compute_time"],
            sync_time=data["sync_time"],
            resource_rates=dict(data["resource_rates"]),
        )


@dataclass(frozen=True)
class FlowResult(SimulationOutcome):
    """Outcome of the fluid-flow engine.

    The analytical model prices PCIe with the steady-state busiest-link
    law; this result replaces that one rate with the makespan of a full
    global batch's transfer set run through the max-min fair fluid
    simulator (:mod:`repro.pcie.flowsim`), keeping every other resource
    priced analytically.  ``pcie_makespan`` is the simulated seconds to
    move one global batch; ``n_transfers`` the concurrent flow count.
    """

    workload_name: str
    arch_name: str
    n_accelerators: int
    batch_size: int

    throughput: float
    prep_rate: float
    consume_rate: float
    bottleneck: str

    compute_time: float
    sync_time: float
    pcie_makespan: float
    n_transfers: int
    resource_rates: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "workload_name": self.workload_name,
            "arch_name": self.arch_name,
            "n_accelerators": self.n_accelerators,
            "batch_size": self.batch_size,
            "throughput": self.throughput,
            "prep_rate": self.prep_rate,
            "consume_rate": self.consume_rate,
            "bottleneck": self.bottleneck,
            "compute_time": self.compute_time,
            "sync_time": self.sync_time,
            "pcie_makespan": self.pcie_makespan,
            "n_transfers": self.n_transfers,
            "resource_rates": dict(self.resource_rates),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FlowResult":
        return cls(
            workload_name=data["workload_name"],
            arch_name=data["arch_name"],
            n_accelerators=data["n_accelerators"],
            batch_size=data["batch_size"],
            throughput=data["throughput"],
            prep_rate=data["prep_rate"],
            consume_rate=data["consume_rate"],
            bottleneck=data["bottleneck"],
            compute_time=data["compute_time"],
            sync_time=data["sync_time"],
            pcie_makespan=data["pcie_makespan"],
            n_transfers=data["n_transfers"],
            resource_rates=dict(data["resource_rates"]),
        )


@dataclass(frozen=True)
class HostRequirements:
    """Host resources a target throughput would demand (Figure 10)."""

    target_rate: float
    required_cores: float
    required_memory_bandwidth: float
    required_pcie_bandwidth: float

    normalized_cores: float
    normalized_memory_bandwidth: float
    normalized_pcie_bandwidth: float


@dataclass(frozen=True)
class LatencyDecomposition:
    """Per-global-batch stage times (Figures 3 and 9).

    The decomposition is the serialized-stage view the paper plots:
    transfer + formatting + augmentation for preparation, then model
    computation and synchronization.
    """

    data_transfer: float
    data_formatting: float
    data_augmentation: float
    model_computation: float
    model_synchronization: float

    @property
    def preparation(self) -> float:
        return self.data_transfer + self.data_formatting + self.data_augmentation

    @property
    def others(self) -> float:
        return self.model_computation + self.model_synchronization

    @property
    def total(self) -> float:
        return self.preparation + self.others

    @property
    def prep_fraction(self) -> float:
        if self.total == 0:
            raise SimulationError("empty decomposition")
        return self.preparation / self.total

    def shares(self) -> Dict[str, float]:
        """Each stage as a fraction of the total (the 100% stack)."""
        total = self.total
        if total == 0:
            raise SimulationError("empty decomposition")
        return {
            "data_transfer": self.data_transfer / total,
            "data_formatting": self.data_formatting / total,
            "data_augmentation": self.data_augmentation / total,
            "model_computation": self.model_computation / total,
            "model_synchronization": self.model_synchronization / total,
        }
