"""Server topology builders for every evaluated architecture.

Two families (§III-A and §IV-D):

* the **baseline family** groups devices by type — accelerator boxes, SSD
  boxes and (once acceleration is enabled) preparation boxes — and chains
  each group's boxes from dedicated root-complex ports;
* **TrainBox** clusters by datapath: each train box holds eight NN
  accelerators, two FPGAs and two SSDs behind one box switch, so the
  SSD→FPGA→accelerator path never climbs above the box.

Box internals follow §V-D: a PEX8796-class switch has six links (one up,
five down), so four accelerators and an FPGA share a leaf switch, two
leaf switches plus the SSD switch hang from the box's top switch, and the
top switch exposes the box's uplink/downlink pair for chaining.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache import memoized
from repro.errors import ConfigError
from repro.core.config import ArchitectureConfig, HardwareConfig, PrepDevice
from repro.devices.accelerator import AcceleratorSpec, NNAccelerator
from repro.devices.cpu import HostCpu
from repro.devices.dram import HostDram
from repro.devices.fpga import FpgaDevice
from repro.devices.gpu_prep import GpuPrepDevice
from repro.devices.ssd import NvmeSsd
from repro.network.ethernet import EthernetLink, EthernetSwitch, StarNetwork
from repro.pcie.address import enumerate_topology
from repro.pcie.link import PcieGen
from repro.pcie.topology import Endpoint, PcieTopology, RootComplex, Switch

#: Placeholder spec attached to accelerator endpoints; the engines use
#: the workload's own calibrated spec, never this one.
_GENERIC_ACC_SPEC = AcceleratorSpec(
    name="generic", sample_rate=5000, reference_batch=2048
)


@dataclass
class BoxInfo:
    """Devices grouped in one physical box."""

    box_id: str
    switch_id: str
    acc_ids: List[str] = field(default_factory=list)
    prep_ids: List[str] = field(default_factory=list)
    ssd_ids: List[str] = field(default_factory=list)


@dataclass
class ServerModel:
    """A fully built server: topology + device registries + host."""

    arch: ArchitectureConfig
    hw: HardwareConfig
    topology: PcieTopology
    boxes: List[BoxInfo]
    cpu: HostCpu
    dram: HostDram
    prep_network: Optional[StarNetwork] = None
    pool_fpga_ids: List[str] = field(default_factory=list)

    host_id: str = "rc"

    #: Per-instance scratch memo for derived read-only objects (demand
    #: vectors, prep-capacity tables) keyed by the deriving function —
    #: see :func:`repro.core.dataflow.build_demand_cached`.  Excluded
    #: from comparison; a copy of a server starts with a fresh memo.
    derived: Dict[object, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def acc_ids(self) -> List[str]:
        return [a for box in self.boxes for a in box.acc_ids]

    @property
    def prep_ids(self) -> List[str]:
        return [p for box in self.boxes for p in box.prep_ids]

    @property
    def ssd_ids(self) -> List[str]:
        return [s for box in self.boxes for s in box.ssd_ids]

    @property
    def n_accelerators(self) -> int:
        return len(self.acc_ids)

    def aggregate_ssd_bandwidth(self) -> float:
        return len(self.ssd_ids) * self.hw.ssd_read_bandwidth

    def ssd_of(self, device_id: str) -> NvmeSsd:
        device = self.topology.node(device_id).device
        if not isinstance(device, NvmeSsd):
            raise ConfigError(f"{device_id} is not an SSD")
        return device


def _build_type_box(
    topology: PcieTopology,
    box_id: str,
    parent: str,
    endpoint_ids: List[str],
    devices: List[object],
    gen: PcieGen,
    lanes: int,
) -> BoxInfo:
    """A box of homogeneous devices: top switch + leaf switches of ≤4."""
    top = topology.attach(Switch(f"{box_id}", max_links=6), parent, gen=gen, lanes=lanes)
    info = BoxInfo(box_id=box_id, switch_id=top.node_id)
    for leaf_idx in range(0, len(endpoint_ids), 4):
        leaf = topology.attach(
            Switch(f"{box_id}.s{leaf_idx // 4}", max_links=6),
            top.node_id,
            gen=gen,
            lanes=lanes,
        )
        for eid, dev in zip(
            endpoint_ids[leaf_idx : leaf_idx + 4], devices[leaf_idx : leaf_idx + 4]
        ):
            topology.attach(Endpoint(eid, device=dev), leaf.node_id, gen=gen, lanes=lanes)
    return info


def build_server(
    arch: ArchitectureConfig,
    n_accelerators: int,
    hw: Optional[HardwareConfig] = None,
    pool_size: Optional[int] = None,
) -> ServerModel:
    """Build the server for ``arch`` with ``n_accelerators`` NN devices.

    ``pool_size`` bounds the prep-pool (TrainBox only); it defaults to the
    in-box FPGA population, which is ample for every Table I workload.
    """
    if n_accelerators <= 0:
        raise ConfigError("need at least one accelerator")
    hw = hw or HardwareConfig()
    gen = arch.pcie_gen
    lanes = hw.pcie_lanes

    total_ports = hw.acc_root_ports + hw.prep_root_ports + hw.ssd_root_ports
    topology = PcieTopology(RootComplex("rc", max_links=total_ports + 2))
    boxes: List[BoxInfo] = []

    if arch.clustering:
        boxes = _build_train_boxes(topology, arch, hw, n_accelerators, gen, lanes)
    else:
        boxes = _build_type_grouped(topology, arch, hw, n_accelerators, gen, lanes)

    enumerate_topology(topology)  # validates the tree invariants first

    prep_network: Optional[StarNetwork] = None
    pool_ids: List[str] = []
    if arch.clustering:
        prep_network = StarNetwork(EthernetSwitch("tor", ports=4096))
        for box in boxes:
            for fpga_id in box.prep_ids:
                prep_network.attach(
                    EthernetLink(fpga_id, bandwidth=hw.ethernet_bandwidth)
                )
        if arch.prep_pool:
            # The pool is a rack-external, shared resource (§V-D offers
            # disaggregated FPGA racks); default to twice the in-box
            # population, enough for every Table I workload.
            in_box = sum(len(b.prep_ids) for b in boxes)
            count = pool_size if pool_size is not None else 2 * in_box
            for i in range(count):
                pid = f"pool_fpga{i}"
                pool_ids.append(pid)
                prep_network.attach(
                    EthernetLink(pid, bandwidth=hw.ethernet_bandwidth)
                )

    return ServerModel(
        arch=arch,
        hw=hw,
        topology=topology,
        boxes=boxes,
        cpu=HostCpu(cores=hw.cpu_cores, frequency=hw.cpu_frequency),
        dram=HostDram(bandwidth=hw.memory_bandwidth),
        prep_network=prep_network,
        pool_fpga_ids=pool_ids,
    )


def build_server_cached(
    arch: ArchitectureConfig,
    n_accelerators: int,
    hw: Optional[HardwareConfig] = None,
    pool_size: Optional[int] = None,
) -> ServerModel:
    """Memoized :func:`build_server`.

    Topology construction + enumeration is the dominant fixed cost of a
    scalability sweep, and the sweeps revisit the same ``(arch, scale)``
    points for every workload.  Both config types are frozen dataclasses,
    so they key the process-wide memo (:mod:`repro.cache`) directly.
    Callers share the returned model;
    :func:`repro.core.analytical.simulate` treats a passed-in server as
    read-only, which is what makes the sharing sound.
    """
    return memoized(
        ("build_server", arch, n_accelerators, hw, pool_size),
        lambda: build_server(arch, n_accelerators, hw=hw, pool_size=pool_size),
    )


def _build_type_grouped(
    topology: PcieTopology,
    arch: ArchitectureConfig,
    hw: HardwareConfig,
    n_accelerators: int,
    gen: PcieGen,
    lanes: int,
) -> List[BoxInfo]:
    """Baseline family: accelerator boxes, SSD boxes, prep boxes."""
    boxes: List[BoxInfo] = []

    # Accelerator boxes.
    n_acc_boxes = math.ceil(n_accelerators / hw.accs_per_box)
    parents = _acc_chain_parents(n_acc_boxes, hw.acc_root_ports, "abox")
    made = 0
    for k in range(n_acc_boxes):
        count = min(hw.accs_per_box, n_accelerators - made)
        ids = [f"acc{made + i}" for i in range(count)]
        devs = [NNAccelerator(i, spec=_GENERIC_ACC_SPEC) for i in ids]
        box = _build_type_box(topology, f"abox{k}", parents[k], ids, devs, gen, lanes)
        box.acc_ids = ids
        boxes.append(box)
        made += count

    # SSD boxes: one per SSD root port.
    for k in range(hw.ssd_root_ports):
        ids = [f"ssd{k * hw.ssds_per_ssd_box + i}" for i in range(hw.ssds_per_ssd_box)]
        devs = [NvmeSsd(i, read_bandwidth=hw.ssd_read_bandwidth) for i in ids]
        box = _build_type_box(topology, f"sbox{k}", "rc", ids, devs, gen, lanes)
        box.ssd_ids = ids
        boxes.append(box)

    # Preparation boxes (step 1 of the paper's ladder).
    if arch.prep_device is not PrepDevice.CPU:
        n_prep = max(1, math.ceil(n_accelerators * hw.prep_per_acc_ratio))
        n_prep_boxes = math.ceil(n_prep / hw.prep_devices_per_box)
        parents = _acc_chain_parents(n_prep_boxes, hw.prep_root_ports, "pbox")
        made = 0
        for k in range(n_prep_boxes):
            count = min(hw.prep_devices_per_box, n_prep - made)
            ids = [f"prep{made + i}" for i in range(count)]
            if arch.prep_device is PrepDevice.FPGA:
                devs = [
                    FpgaDevice(i, ethernet_bandwidth=hw.ethernet_bandwidth)
                    for i in ids
                ]
            else:
                devs = [GpuPrepDevice(i) for i in ids]
            box = _build_type_box(
                topology, f"pbox{k}", parents[k], ids, devs, gen, lanes
            )
            box.prep_ids = ids
            boxes.append(box)
            made += count
    return boxes


def _acc_chain_parents(n_boxes: int, ports: int, prefix: str) -> List[str]:
    """Daisy-chain parent ids: box k on chain k%ports behind its
    predecessor's top switch."""
    per_chain: List[List[int]] = [[] for _ in range(ports)]
    for k in range(n_boxes):
        per_chain[k % ports].append(k)
    parent_of = {}
    for chain in per_chain:
        prev = "rc"
        for k in chain:
            parent_of[k] = prev
            prev = f"{prefix}{k}"
    return [parent_of[k] for k in range(n_boxes)]


def _build_train_boxes(
    topology: PcieTopology,
    arch: ArchitectureConfig,
    hw: HardwareConfig,
    n_accelerators: int,
    gen: PcieGen,
    lanes: int,
) -> List[BoxInfo]:
    """TrainBox layout: clustered boxes over every root port."""
    n_boxes = math.ceil(n_accelerators / hw.accs_per_box)
    ports = hw.acc_root_ports + hw.prep_root_ports + hw.ssd_root_ports
    parents = _acc_chain_parents(n_boxes, ports, "tbox")
    boxes: List[BoxInfo] = []
    made = 0
    for k in range(n_boxes):
        count = min(hw.accs_per_box, n_accelerators - made)
        top = topology.attach(Switch(f"tbox{k}", max_links=6), parents[k], gen=gen, lanes=lanes)
        box = BoxInfo(box_id=f"tbox{k}", switch_id=top.node_id)
        # Two leaf switches: 4 accelerators + 1 FPGA each (§V-D).
        accs_left = count
        for leaf_idx in range(2):
            leaf = topology.attach(
                Switch(f"tbox{k}.s{leaf_idx}", max_links=6),
                top.node_id,
                gen=gen,
                lanes=lanes,
            )
            take = min(4, accs_left)
            for i in range(take):
                aid = f"acc{made + i}"
                topology.attach(
                    Endpoint(aid, device=NNAccelerator(aid, spec=_GENERIC_ACC_SPEC)),
                    leaf.node_id,
                    gen=gen,
                    lanes=lanes,
                )
                box.acc_ids.append(aid)
            made += take
            accs_left -= take
            if leaf_idx < hw.fpgas_per_train_box:
                fid = f"tbox{k}_fpga{leaf_idx}"
                topology.attach(
                    Endpoint(
                        fid,
                        device=FpgaDevice(
                            fid, ethernet_bandwidth=hw.ethernet_bandwidth
                        ),
                    ),
                    leaf.node_id,
                    gen=gen,
                    lanes=lanes,
                )
                box.prep_ids.append(fid)
        # SSD switch.
        ssd_switch = topology.attach(
            Switch(f"tbox{k}.ssd", max_links=6), top.node_id, gen=gen, lanes=lanes
        )
        for i in range(hw.ssds_per_train_box):
            sid = f"tbox{k}_ssd{i}"
            topology.attach(
                Endpoint(sid, device=NvmeSsd(sid, read_bandwidth=hw.ssd_read_bandwidth)),
                ssd_switch.node_id,
                gen=gen,
                lanes=lanes,
            )
            box.ssd_ids.append(sid)
        boxes.append(box)
    return boxes
