"""The fluid-flow engine: transient PCIe pricing for a full scenario.

The analytical engine prices the PCIe fabric with the steady-state
busiest-link law, which assumes perfect pipelining of every per-sample
flow.  This engine instead *simulates* one global batch's transfer set —
every per-sample flow scaled to ``n_accelerators × batch`` samples,
launched concurrently — through the max-min fair fluid simulator
(:mod:`repro.pcie.flowsim`), and replaces the analytical PCIe rate with
the simulated one.  Every other preparation resource keeps its
analytical price, and the consume side (compute + sync) is identical, so
the engines agree exactly when max-min fairness reproduces the
busiest-link bound and diverge precisely where transient contention
matters.

The result is a :class:`~repro.core.results.FlowResult`, satisfying the
same :class:`~repro.core.results.SimulationOutcome` interface as the
other engines.
"""

from __future__ import annotations

import math
from typing import Optional

from repro import obs
from repro.core.analytical import (
    TrainingScenario,
    make_sync_model,
    prep_capacity_cached,
)
from repro.core.config import HardwareConfig
from repro.core.dataflow import build_demand_cached
from repro.core.results import FlowResult
from repro.core.server import ServerModel, build_server
from repro.errors import ConfigError
from repro.pcie.flowsim import FlowSimulator, Transfer


def global_batch_transfers(demand, n_samples: int):
    """The scenario's per-sample PCIe flow set scaled to one global
    batch of ``n_samples`` samples, as concurrent fluid transfers."""
    transfers = []
    for flow in demand.pcie_flows:
        if flow.volume <= 0 or flow.src == flow.dst:
            continue
        transfers.append(
            Transfer(
                src=flow.src,
                dst=flow.dst,
                volume=flow.volume * n_samples,
                demand=flow.demand,
                label=flow.label,
            )
        )
    return transfers


def simulate_flow(
    scenario: TrainingScenario, server: Optional[ServerModel] = None
) -> FlowResult:
    """Run the fluid-flow engine for one scenario."""
    workload = scenario.workload
    hw = scenario.hw or HardwareConfig()
    if server is None:
        with obs.span("flow.build_server", cat="engine"):
            server = build_server(
                scenario.arch,
                scenario.n_accelerators,
                hw=hw,
                pool_size=scenario.pool_size,
            )
    elif server.n_accelerators != scenario.n_accelerators:
        raise ConfigError(
            f"server has {server.n_accelerators} accelerators, scenario "
            f"wants {scenario.n_accelerators}"
        )

    with obs.span("flow.price_demand", cat="engine"):
        demand = build_demand_cached(server, workload)
        _, resource_rates = prep_capacity_cached(server, workload)

    batch = scenario.batch_size or workload.batch_size
    n_samples = scenario.n_accelerators * batch
    transfers = global_batch_transfers(demand, n_samples)
    with obs.span("flow.fluid_pcie", cat="engine", transfers=len(transfers)):
        if transfers:
            makespan = FlowSimulator(server.topology).makespan(transfers)
        else:
            makespan = 0.0
    fluid_pcie_rate = n_samples / makespan if makespan > 0 else math.inf
    resource_rates["pcie"] = fluid_pcie_rate
    prep_rate = min(resource_rates.values())

    with obs.span("flow.solve", cat="engine"):
        if scenario.accelerator == "tpu":
            spec = workload.accelerator_spec()
        else:
            spec = workload.legacy_accelerator_spec()
        compute_time = spec.compute_time(batch)
        fabric = scenario.fabric_bandwidth or hw.accelerator_fabric_bandwidth
        sync_model = make_sync_model(scenario.arch.sync, fabric)
        sync_time = sync_model.time(
            scenario.n_accelerators, workload.model_bytes
        )
        consume_rate = (
            scenario.n_accelerators * batch / (compute_time + sync_time)
        )
        throughput = min(prep_rate, consume_rate)
        if prep_rate < consume_rate:
            bottleneck = min(resource_rates, key=resource_rates.get)
        else:
            bottleneck = "accelerator"

    result = FlowResult(
        workload_name=workload.name,
        arch_name=scenario.arch.name,
        n_accelerators=scenario.n_accelerators,
        batch_size=batch,
        throughput=throughput,
        prep_rate=prep_rate,
        consume_rate=consume_rate,
        bottleneck=bottleneck,
        compute_time=compute_time,
        sync_time=sync_time,
        pcie_makespan=makespan,
        n_transfers=len(transfers),
        resource_rates=resource_rates,
    )
    obs.inc("engine.flow.runs")
    obs.inc("engine.flow.transfers", len(transfers))
    obs.observe("engine.flow.throughput", throughput)
    tracer = obs.current_tracer()
    if tracer is not None:
        from repro.core.analytical import emit_iteration_trace

        emit_iteration_trace(tracer, result)
    return result


def simulate_flow_schedule(
    scenario: TrainingScenario, schedule, horizon: float
):
    """Price a :class:`~repro.core.faults.FaultSchedule` with the fluid
    flow engine: each constant-fault window re-simulates the global
    batch's PCIe transfer set on the degraded server (dead endpoints
    stop sourcing and sinking traffic), yielding a piecewise
    degraded-throughput timeline."""
    import dataclasses

    from repro.core.faults import price_schedule

    hw = scenario.hw or HardwareConfig()
    server = build_server(
        scenario.arch,
        scenario.n_accelerators,
        hw=hw,
        pool_size=scenario.pool_size,
    )

    def runner(degraded: ServerModel) -> FlowResult:
        window_scenario = dataclasses.replace(
            scenario, n_accelerators=degraded.n_accelerators
        )
        return simulate_flow(window_scenario, server=degraded)

    with obs.span("flow.price_schedule", cat="engine", events=len(schedule)):
        return price_schedule(server, schedule, horizon, runner)
