"""Structure-of-arrays analytical engine: whole sweep grids per pass.

The scalar solver (:mod:`repro.core.analytical`) prices one scenario per
call: route every flow with Python objects, fold link loads through a
dict, rebuild sync models point by point.  A sweep grid repeats that
work hundreds of times with only the scale/batch axes changing, so this
module evaluates the *entire* grid in a handful of NumPy float64 passes:

* **consume side** — compute time and the ring/tree/central sync closed
  forms broadcast over the scale axis as arrays;
* **prep side** — per-(server, workload) resource-rate rows stacked into
  a points × resources matrix and min-reduced per row;
* **PCIe pricing** — a per-architecture link × flow incidence structure
  (integer hop arrays over a compact routing table, memoized on the
  server next to ``build_demand_cached``'s entries) so the busiest-link
  reduction over a demand becomes one ``np.bincount`` + axis-max instead
  of per-point routing walks.

Bit-identity with the scalar engine is a hard contract, not an
approximation: every array expression mirrors the scalar operation order
elementwise (``np.bincount`` accumulates weights as the same sequential
left fold the scalar dict uses; sync forms keep the scalar grouping;
min/argmin reductions preserve the scalar first-minimal tie-breaks), and
the golden-grid tests assert fingerprint equality before any timing.

Points the kernel cannot express fall back to the scalar engine through
:class:`BatchInapplicable` (mirroring ``PlanInapplicable`` from the
compiled prep plans): non-analytical engines, sync strategies without a
registered closed form, or an active tracer (which wants the scalar
engine's per-point spans).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.analytical import (
    RESOURCE_ORDER,
    TrainingScenario,
    resource_rate_table,
)
from repro.core.config import HardwareConfig, SyncStrategy
from repro.core.dataflow import build_demand_lite
from repro.core.server import ServerModel, build_server_cached
from repro.errors import ConfigError, SimulationError
from repro.core.results import SimulationResult
from repro.pcie.link import LinkDirection
from repro.sync.model import DEFAULT_STEP_LATENCY


class BatchInapplicable(SimulationError):
    """A sweep point the vectorized kernel cannot express.

    Never escapes :func:`evaluate_grid` for points it merely cannot
    batch — those are reported as fallback reasons so the sweep engine
    can route them through the scalar solver instead.
    """


# -- closed-form sync library (vectorized over the scale axis) ---------------
#
# Each form receives float64 arrays (n, model_bytes, fabric bandwidth)
# already filtered to n > 1 and model_bytes != 0, and must keep the exact
# operation order of the matching SyncModel.time() so results stay
# bit-identical.  Tests monkeypatch this table to force fallbacks.


def _ring_form(n: np.ndarray, m: np.ndarray, bw: np.ndarray) -> np.ndarray:
    # RingSyncModel: steps * (M / n) / bw + steps * latency
    steps = 2.0 * (n - 1.0)
    return (steps * (m / n)) / bw + steps * DEFAULT_STEP_LATENCY


def _tree_form(n: np.ndarray, m: np.ndarray, bw: np.ndarray) -> np.ndarray:
    # TreeSyncModel: 2 * ceil(log2 n) * (M / bw + latency).  The depth is
    # computed per unique n with the same math.ceil/math.log2 calls the
    # scalar model makes (libm parity), then scattered.
    depth = np.empty_like(n)
    for value in np.unique(n):
        depth[n == value] = float(math.ceil(math.log2(int(value))))
    return (2.0 * depth) * (m / bw + DEFAULT_STEP_LATENCY)


def _central_form(n: np.ndarray, m: np.ndarray, bw: np.ndarray) -> np.ndarray:
    # CentralSyncModel: 2 * (n - 1) * (M / bw + latency)
    return (2.0 * (n - 1.0)) * (m / bw + DEFAULT_STEP_LATENCY)


_SYNC_FORMS = {
    SyncStrategy.RING: _ring_form,
    SyncStrategy.TREE: _tree_form,
    SyncStrategy.CENTRAL: _central_form,
}


# -- compact routing table + flow incidence ----------------------------------


@dataclass
class RoutingTable:
    """Integer-indexed view of a server's PCIe tree.

    Nodes are numbered in topology insertion order; the directed link
    above node ``i`` gets slot ``2i`` (UP) and ``2i + 1`` (DOWN), so a
    route is a tuple of slot ids and a load vector is one dense array.
    Link names are rendered lazily — only the single bottleneck slot of
    a priced demand ever needs its human-readable form.
    """

    index: Dict[str, int]
    parent: List[int]
    depth: List[int]
    bandwidth: np.ndarray
    uplinks: List[object]
    n_slots: int
    routes: Dict[Tuple[int, int], Tuple[int, ...]] = field(default_factory=dict)
    _names: Dict[int, str] = field(default_factory=dict)

    def link_name(self, slot: int) -> str:
        """Human-readable directed-link name for a slot (lazily built)."""
        name = self._names.get(slot)
        if name is None:
            link = self.uplinks[slot // 2]
            direction = (
                LinkDirection.UP if slot % 2 == 0 else LinkDirection.DOWN
            )
            name = str(link.directed(direction))
            self._names[slot] = name
        return name

    def route_slots(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed-link slots of ``src -> dst``, LCA walk on int arrays.

        Hop order matches :func:`repro.pcie.routing.route`: up hops from
        the source, then down hops toward the destination.
        """
        cached = self.routes.get((src, dst))
        if cached is not None:
            return cached
        parent, depth = self.parent, self.depth
        a, b = src, dst
        up: List[int] = []
        down: List[int] = []
        while depth[a] > depth[b]:
            up.append(2 * a)
            a = parent[a]
        while depth[b] > depth[a]:
            down.append(2 * b + 1)
            b = parent[b]
        while a != b:
            up.append(2 * a)
            a = parent[a]
            down.append(2 * b + 1)
            b = parent[b]
        hops = tuple(up + down[::-1])
        self.routes[(src, dst)] = hops
        return hops


def _build_routing_table(topology) -> RoutingTable:
    nodes = list(topology.nodes())
    index = {node.node_id: i for i, node in enumerate(nodes)}
    parent = [-1] * len(nodes)
    depth = [0] * len(nodes)
    bandwidth = np.ones(2 * len(nodes), dtype=np.float64)
    uplinks: List[object] = [None] * len(nodes)
    # Insertion order guarantees parents precede children (attach()
    # requires an existing parent), so one pass fills depths.
    for node in nodes:
        i = index[node.node_id]
        parent_id = topology.parent_of(node.node_id)
        if parent_id is None:
            continue
        parent[i] = index[parent_id]
        depth[i] = depth[parent[i]] + 1
        link = topology.uplink_of(node.node_id)
        uplinks[i] = link
        bandwidth[2 * i] = bandwidth[2 * i + 1] = link.bandwidth
    return RoutingTable(
        index=index,
        parent=parent,
        depth=depth,
        bandwidth=bandwidth,
        uplinks=uplinks,
        n_slots=2 * len(nodes),
    )


def routing_table(server: ServerModel) -> RoutingTable:
    """Per-server memo of the integer routing table (built once per
    architecture instance, shared by every workload's incidence)."""
    key = ("routing_table",)
    memo = server.derived
    if key not in memo:
        memo[key] = _build_routing_table(server.topology)
    return memo[key]  # type: ignore[return-value]


@dataclass
class EndpointIncidence:
    """Per-server incidence of the PCIe flow *endpoint* sequence.

    Every dataflow builder emits the same (src, dst) sequence for a
    given server regardless of workload — the workload only scales the
    volumes — so the hop arrays are routed once per server and shared by
    every workload's :class:`FlowIncidence`.  ``hop_link[k]`` is the
    directed-link slot the ``k``-th hop loads and ``hop_flow[k]`` the
    flow it belongs to, in flow-major route order — exactly the order
    the scalar dict fold visits, which is what makes the ``bincount``
    accumulation bit-identical.  The ``ssd_*`` arrays precompute the
    per-drive accounting: which flows source from an SSD, each flow's
    compact drive index, and the drives' read bandwidths.
    """

    srcs: List[str]
    dsts: List[str]
    hop_link: np.ndarray
    hop_flow: np.ndarray
    ssd_flow: np.ndarray
    ssd_src: np.ndarray
    ssd_bandwidth: np.ndarray


def _lite_demand(server: ServerModel, workload):
    """Per-server memo of :func:`build_demand_lite` (demand + specs)."""
    key = ("demand_lite", workload.name)
    memo = server.derived
    if key not in memo:
        memo[key] = build_demand_lite(server, workload)
    return memo[key]


def _endpoint_incidence(
    server: ServerModel, table: RoutingTable, srcs: List[str], dsts: List[str]
) -> EndpointIncidence:
    key = ("flow_endpoints",)
    memo = server.derived
    if key not in memo:
        index = table.index
        hop_link: List[int] = []
        hop_flow: List[int] = []
        for f, (src, dst) in enumerate(zip(srcs, dsts)):
            if src == dst:
                continue
            slots = table.route_slots(index[src], index[dst])
            hop_link.extend(slots)
            hop_flow.extend([f] * len(slots))
        ssd_ids = server.ssd_ids
        ssd_index = {sid: k for k, sid in enumerate(ssd_ids)}
        ssd_flow = [f for f, src in enumerate(srcs) if src in ssd_index]
        memo[key] = EndpointIncidence(
            srcs=srcs,
            dsts=dsts,
            hop_link=np.asarray(hop_link, dtype=np.int64),
            hop_flow=np.asarray(hop_flow, dtype=np.int64),
            ssd_flow=np.asarray(ssd_flow, dtype=np.int64),
            ssd_src=np.asarray(
                [ssd_index[srcs[f]] for f in ssd_flow], dtype=np.int64
            ),
            ssd_bandwidth=np.asarray(
                [server.ssd_of(sid).read_bandwidth for sid in ssd_ids],
                dtype=np.float64,
            ),
        )
    return memo[key]  # type: ignore[return-value]


@dataclass
class FlowIncidence:
    """One demand's PCIe flow set: shared endpoint incidence + volumes."""

    endpoints: EndpointIncidence
    volumes: np.ndarray

    @property
    def hop_link(self) -> np.ndarray:
        return self.endpoints.hop_link

    @property
    def hop_flow(self) -> np.ndarray:
        return self.endpoints.hop_flow


def flow_incidence(
    server: ServerModel, workload, table: Optional[RoutingTable] = None
) -> FlowIncidence:
    """Per-(server, workload) memo of the demand's flow incidence.

    The endpoint sequence is verified against the server's shared hop
    arrays with whole-list comparisons (the ids are per-server interned
    strings, so these are effectively pointer checks); a mismatch means
    the endpoint-invariant above no longer holds and the pair is demoted
    to the scalar engine rather than priced wrong.
    """
    key = ("flow_incidence", workload.name)
    memo = server.derived
    if key not in memo:
        if table is None:
            table = routing_table(server)
        _, specs = _lite_demand(server, workload)
        srcs = [spec[0] for spec in specs]
        dsts = [spec[1] for spec in specs]
        ends = _endpoint_incidence(server, table, srcs, dsts)
        if srcs != ends.srcs or dsts != ends.dsts:
            raise BatchInapplicable(
                "pcie flow endpoints vary across workloads on this server"
            )
        volumes = np.fromiter(
            (spec[2] for spec in specs),
            dtype=np.float64,
            count=len(specs),
        )
        memo[key] = FlowIncidence(endpoints=ends, volumes=volumes)
    return memo[key]  # type: ignore[return-value]


def price_pcie_incidence(
    table: RoutingTable, incidence: FlowIncidence
) -> Tuple[float, str]:
    """Per-sample PCIe time and bottleneck-link name from an incidence.

    ``np.bincount`` accumulates the hop weights as a strict sequential
    left fold per bin, which is the same addition order as the scalar
    dict accumulation in ``pcie.traffic.link_loads`` (zero-volume hops
    add exact +0.0 and cannot perturb the fold).  The tie-break for the
    busiest link replicates the scalar ``max`` over dict items: first
    maximal link in first-positive-encounter order.
    """
    if incidence.hop_link.size == 0:
        return 0.0, ""
    weights = incidence.volumes[incidence.hop_flow]
    positive = weights > 0.0
    if not positive.any():
        return 0.0, ""
    loads = np.bincount(
        incidence.hop_link, weights=weights, minlength=table.n_slots
    )
    times = loads / table.bandwidth
    worst = float(times.max())
    pos_links = incidence.hop_link[positive]
    first_seen = np.full(table.n_slots, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(
        first_seen, pos_links, np.arange(pos_links.size, dtype=np.int64)
    )
    candidates = np.flatnonzero(times == worst)
    slot = int(candidates[np.argmin(first_seen[candidates])])
    return worst, table.link_name(slot)


def _ssd_rate_incidence(
    server: ServerModel, incidence: FlowIncidence, demand
) -> float:
    """Per-drive SSD media rate from the incidence arrays.

    Mirrors the scalar per-drive accounting in ``resource_rate_table``:
    the bincount folds each drive's sourced volumes in flow order (the
    scalar dict fold; zero-volume flows add exact +0.0), and the min
    over positively-loaded drives reduces the same value set as the
    scalar generator, so the rate is bit-identical.
    """
    ends = incidence.endpoints
    if ends.ssd_flow.size:
        per_drive = np.bincount(
            ends.ssd_src,
            weights=incidence.volumes[ends.ssd_flow],
            minlength=ends.ssd_bandwidth.size,
        )
        loaded = per_drive > 0.0
        if loaded.any():
            return float((ends.ssd_bandwidth[loaded] / per_drive[loaded]).min())
    if demand.ssd_read_bytes > 0:
        return server.aggregate_ssd_bandwidth() / demand.ssd_read_bytes
    return math.inf


def prep_rates_batch(
    server: ServerModel, workload
) -> Tuple[Dict[str, float], str]:
    """Resource-rate row and PCIe bottleneck-link name for one pair.

    PCIe and the per-drive SSD accounting are priced through the
    memoized incidence; the other resources go through the same
    ``resource_rate_table`` code the scalar engine runs, so the row is
    identical by construction.
    """
    key = ("batch_prep", workload.name)
    memo = server.derived
    if key not in memo:
        table = routing_table(server)
        incidence = flow_incidence(server, workload, table)
        pcie_time, link_name = price_pcie_incidence(table, incidence)
        demand, _ = _lite_demand(server, workload)
        rates = resource_rate_table(
            server,
            demand,
            pcie_time=pcie_time,
            ssd_rate=_ssd_rate_incidence(server, incidence, demand),
        )
        memo[key] = (rates, link_name)
    return memo[key]  # type: ignore[return-value]


# -- the grid kernel ---------------------------------------------------------

_BATCHABLE_ACCELERATORS = ("tpu", "legacy-gpu")


def inapplicable_reason(point) -> Optional[str]:
    """Why a point cannot take the batch kernel, or ``None`` if it can."""
    if point.engine != "analytical":
        return f"engine {point.engine!r} has no vectorized form"
    if point.arch is None:
        return "no architecture"
    if point.arch.sync not in _SYNC_FORMS:
        return f"no closed form for sync strategy {point.arch.sync!r}"
    if point.accelerator not in _BATCHABLE_ACCELERATORS:
        return f"unknown accelerator {point.accelerator!r}"
    return None


def evaluate_grid(
    points: Sequence,
) -> Tuple[List[Optional[SimulationResult]], List[str]]:
    """Evaluate every batchable point of a grid in SoA passes.

    Returns ``(results, reasons)`` aligned with ``points``: a
    :class:`SimulationResult` (bit-identical to the scalar engine) where
    the kernel applied, ``None`` plus the fallback reason where it did
    not.  Raises the same error types the scalar engine would for
    invalid scenarios (``ConfigError``) or degenerate rates
    (``SimulationError``).
    """
    results, reasons, _ = _evaluate(points, isolate=False)
    return results, reasons


def evaluate_points(
    points: Sequence, isolate_errors: bool = True
) -> Tuple[
    List[Optional[SimulationResult]],
    List[str],
    List[Optional[Exception]],
]:
    """Evaluate a ragged point-list: dedup, batch, isolate errors.

    The grid entry (:func:`evaluate_grid`) serves sweeps, where the
    caller controls the point set; this entry serves the service's
    cross-request batch scheduler (:mod:`repro.service.batch`), where
    the set is stitched together from *whatever distinct tenants asked
    for*.  Two differences follow:

    * **canonicalization** — points are deduplicated on their result
      cache key (:func:`repro.core.sweeps.cache_key`) before the SoA
      passes, so requests that spell the same scenario twice cost one
      evaluation; duplicates share the result object.
    * **per-point error isolation** (``isolate_errors=True``) — a
      poisoned point (invalid scenario, degenerate rates) must not fail
      its batch-mates, so errors the grid entry would raise are instead
      returned in the third, point-aligned list.  The captured
      exceptions are the very objects the scalar engine would raise.

    Returns ``(results, reasons, errors)``, all aligned with
    ``points``.  A point has exactly one of ``results[i]`` (kernel
    applied), ``errors[i]`` (its evaluation failed), or neither
    (``reasons[i]`` says why the kernel declined it and the caller
    should fall back to the scalar engine).
    """
    from repro.core.sweeps import cache_key

    unique_of: Dict[str, int] = {}
    unique_idx: List[int] = []
    slot: List[int] = []
    for idx, point in enumerate(points):
        key = cache_key(point)
        j = unique_of.get(key)
        if j is None:
            j = unique_of[key] = len(unique_idx)
            unique_idx.append(idx)
        slot.append(j)
    u_results, u_reasons, u_errors = _evaluate(
        [points[i] for i in unique_idx], isolate=isolate_errors
    )
    return (
        [u_results[j] for j in slot],
        [u_reasons[j] for j in slot],
        [u_errors[j] for j in slot],
    )


def _evaluate(
    points: Sequence, isolate: bool
) -> Tuple[
    List[Optional[SimulationResult]],
    List[str],
    List[Optional[Exception]],
]:
    """The shared kernel body behind both public entries.

    ``isolate=False`` preserves the grid contract exactly: scenario
    validation and degenerate-rate errors raise.  ``isolate=True``
    converts both into per-point entries of the returned ``errors``
    list instead, demoting only the offending rows.
    """
    results: List[Optional[SimulationResult]] = [None] * len(points)
    reasons: List[str] = [""] * len(points)
    errors: List[Optional[Exception]] = [None] * len(points)

    tracer_active = obs.current_tracer() is not None
    eligible: List[int] = []
    scenarios: List[TrainingScenario] = []
    for i, point in enumerate(points):
        if tracer_active:
            reasons[i] = "tracing active (scalar engine emits per-point spans)"
            continue
        reason = inapplicable_reason(point)
        if reason is not None:
            reasons[i] = reason
            continue
        # Scenario construction runs the scalar engine's validation
        # (positive batch size, known accelerator) with identical errors.
        try:
            scenario = TrainingScenario(
                workload=point.workload,
                arch=point.arch,
                n_accelerators=point.scale,
                batch_size=point.batch_size,
                hw=point.hw,
                accelerator=point.accelerator,
                fabric_bandwidth=point.fabric_bandwidth,
                pool_size=point.pool_size,
            )
        except (ConfigError, SimulationError) as exc:
            if not isolate:
                raise
            errors[i] = exc
            reasons[i] = f"error: {exc}"
            continue
        scenarios.append(scenario)
        eligible.append(i)
        reasons[i] = "batch"
    if not eligible:
        return results, reasons, errors

    n_points = len(eligible)
    n_resources = len(RESOURCE_ORDER)

    # ---- prep side: stack per-pair rate rows into a P × R matrix -----
    with obs.span("sweep.batch_compile", cat="sweep", points=n_points):
        servers: Dict[tuple, ServerModel] = {}
        pairs_priced = set()
        rate_matrix = np.empty((n_points, n_resources), dtype=np.float64)
        rates_dicts: List[Dict[str, float]] = [None] * n_points  # type: ignore
        pcie_links: List[str] = [""] * n_points
        demoted: List[int] = []
        for j, i in enumerate(eligible):
            point, scenario = points[i], scenarios[j]
            server_key = (
                point.arch, point.scale, point.hw, point.pool_size,
            )
            server = servers.get(server_key)
            if server is None:
                server = build_server_cached(
                    point.arch, point.scale,
                    hw=point.hw, pool_size=point.pool_size,
                )
                servers[server_key] = server
            try:
                rates, link_name = prep_rates_batch(server, point.workload)
            except BatchInapplicable as exc:
                reasons[i] = str(exc) or "batch prep pricing inapplicable"
                demoted.append(j)
                continue
            except (ConfigError, SimulationError) as exc:
                # The pair itself is unpriceable — the scalar engine
                # would raise the same error for this point.
                if not isolate:
                    raise
                errors[i] = exc
                reasons[i] = f"error: {exc}"
                demoted.append(j)
                continue
            pairs_priced.add((server_key, point.workload.name))
            rates_dicts[j] = rates
            pcie_links[j] = link_name
            for c, name in enumerate(RESOURCE_ORDER):
                rate_matrix[j, c] = rates[name]
        # Distinct (server, workload) pricing rows this grid used — a
        # per-run count (unlike memo misses, which would depend on what
        # earlier sweeps in the process already compiled and so break
        # the parallel == serial manifest guarantee).
        obs.inc("sweep.batch_compile", len(pairs_priced))
        if demoted:
            keep = [j for j in range(n_points) if j not in set(demoted)]
            eligible = [eligible[j] for j in keep]
            scenarios = [scenarios[j] for j in keep]
            rates_dicts = [rates_dicts[j] for j in keep]
            pcie_links = [pcie_links[j] for j in keep]
            rate_matrix = rate_matrix[keep]
            n_points = len(eligible)
            if not n_points:
                return results, reasons, errors

    # min-reduce per row; first-minimal argmin matches the scalar
    # min(rates, key=rates.get) because columns follow RESOURCE_ORDER.
    prep_rate = rate_matrix.min(axis=1)
    bad = np.flatnonzero(prep_rate <= 0.0)
    if bad.size:
        if not isolate:
            raise SimulationError(
                f"non-positive prep rate: {rates_dicts[int(bad[0])]}"
            )
        bad_set = set(int(j) for j in bad)
        for j in bad_set:
            i = eligible[j]
            exc = SimulationError(f"non-positive prep rate: {rates_dicts[j]}")
            errors[i] = exc
            reasons[i] = f"error: {exc}"
        keep = [j for j in range(n_points) if j not in bad_set]
        eligible = [eligible[j] for j in keep]
        scenarios = [scenarios[j] for j in keep]
        rates_dicts = [rates_dicts[j] for j in keep]
        pcie_links = [pcie_links[j] for j in keep]
        rate_matrix = rate_matrix[keep]
        prep_rate = rate_matrix.min(axis=1)
        n_points = len(eligible)
        if not n_points:
            return results, reasons, errors
    bottleneck_col = rate_matrix.argmin(axis=1)

    # ---- consume side: closed forms broadcast over the scale axis ----
    n_arr = np.array([s.n_accelerators for s in scenarios], dtype=np.float64)
    batch_sizes = [
        s.batch_size or s.workload.batch_size for s in scenarios
    ]
    batch_arr = np.array(batch_sizes, dtype=np.float64)
    model_bytes = np.array(
        [s.workload.model_bytes for s in scenarios], dtype=np.float64
    )
    fabric = np.array(
        [
            s.fabric_bandwidth
            or (s.hw or HardwareConfig()).accelerator_fabric_bandwidth
            for s in scenarios
        ],
        dtype=np.float64,
    )

    compute_time = np.empty(n_points, dtype=np.float64)
    compute_memo: Dict[tuple, float] = {}
    for j, s in enumerate(scenarios):
        key = (s.workload, s.accelerator, batch_sizes[j])
        value = compute_memo.get(key)
        if value is None:
            spec = (
                s.workload.accelerator_spec()
                if s.accelerator == "tpu"
                else s.workload.legacy_accelerator_spec()
            )
            value = spec.compute_time(batch_sizes[j])
            compute_memo[key] = value
        compute_time[j] = value

    sync_time = np.zeros(n_points, dtype=np.float64)
    active = (n_arr > 1.0) & (model_bytes != 0.0)
    strategies = np.array([s.arch.sync.value for s in scenarios])
    for strategy, form in _SYNC_FORMS.items():
        mask = active & (strategies == strategy.value)
        if mask.any():
            sync_time[mask] = form(
                n_arr[mask], model_bytes[mask], fabric[mask]
            )

    consume_rate = (n_arr * batch_arr) / (compute_time + sync_time)
    throughput = np.minimum(prep_rate, consume_rate)
    prep_bound = prep_rate < consume_rate

    # ---- assembly ----------------------------------------------------
    for j, i in enumerate(eligible):
        scenario = scenarios[j]
        if prep_bound[j]:
            bottleneck = RESOURCE_ORDER[int(bottleneck_col[j])]
            if bottleneck == "pcie" and pcie_links[j]:
                bottleneck = f"pcie ({pcie_links[j]})"
        else:
            bottleneck = "accelerator"
        results[i] = SimulationResult(
            workload_name=scenario.workload.name,
            arch_name=scenario.arch.name,
            n_accelerators=scenario.n_accelerators,
            batch_size=batch_sizes[j],
            throughput=float(throughput[j]),
            prep_rate=float(prep_rate[j]),
            consume_rate=float(consume_rate[j]),
            bottleneck=bottleneck,
            compute_time=float(compute_time[j]),
            sync_time=float(sync_time[j]),
            resource_rates=dict(rates_dicts[j]),
        )
        obs.observe("engine.analytical.throughput", float(throughput[j]))
    obs.inc("engine.analytical.runs", n_points)
    return results, reasons, errors
