"""High-level façade: plan, estimate, validate and report in one place.

`TrainingSession` is the entry point a downstream user actually wants:
name a workload, a scale and an architecture, then ask for the §V-A
initialization plan, the analytical estimate, a DES cross-check, and a
human-readable report — without touching the underlying engines.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError
from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.core.dataflow import build_demand
from repro.core.des import DesResult, simulate_des
from repro.core.initializer import TrainInitializer, TrainPlan
from repro.core.resources import host_requirements, resource_breakdown, shares
from repro.core.results import SimulationResult
from repro.core.server import build_server
from repro.workloads.registry import Workload, get_workload

_NAMED_ARCHS = {
    "baseline": ArchitectureConfig.baseline,
    "trainbox": ArchitectureConfig.trainbox,
    "trainbox-no-pool": lambda: ArchitectureConfig.trainbox(prep_pool=False),
}


class TrainingSession:
    """One (workload, architecture, scale) configuration under study."""

    def __init__(
        self,
        workload: Union[str, Workload],
        n_accelerators: int = 256,
        arch: Union[str, ArchitectureConfig] = "trainbox",
        batch_size: Optional[int] = None,
        hw: Optional[HardwareConfig] = None,
    ) -> None:
        self.workload = (
            get_workload(workload) if isinstance(workload, str) else workload
        )
        if isinstance(arch, str):
            try:
                arch = _NAMED_ARCHS[arch]()
            except KeyError:
                raise ConfigError(
                    f"unknown architecture {arch!r}; known: {sorted(_NAMED_ARCHS)}"
                ) from None
        self.arch = arch
        self.n_accelerators = n_accelerators
        self.batch_size = batch_size
        self.hw = hw or HardwareConfig()
        self.server = build_server(arch, n_accelerators, hw=self.hw)
        self._result: Optional[SimulationResult] = None
        self._plan: Optional[TrainPlan] = None

    # -- the four verbs ---------------------------------------------------

    def plan(self, num_items: int = 1_000_000) -> TrainPlan:
        """The §V-A initialization plan (TrainBox architectures only)."""
        if self._plan is None:
            self._plan = TrainInitializer(self.server).plan(
                self.workload, num_items=num_items, batch_size=self.batch_size
            )
        return self._plan

    def estimate(self) -> SimulationResult:
        """Analytical steady-state throughput."""
        if self._result is None:
            self._result = simulate(
                TrainingScenario(
                    self.workload,
                    self.arch,
                    self.n_accelerators,
                    batch_size=self.batch_size,
                    hw=self.hw,
                ),
                server=self.server,
            )
        return self._result

    def validate(
        self, iterations: int = 60, jitter: float = 0.0, seed: int = 0
    ) -> DesResult:
        """Cross-check the estimate with the discrete-event simulator."""
        return simulate_des(
            TrainingScenario(
                self.workload,
                self.arch,
                self.n_accelerators,
                batch_size=self.batch_size,
                hw=self.hw,
            ),
            iterations=iterations,
            jitter=jitter,
            seed=seed,
        )

    def report(self) -> str:
        """A human-readable summary of the configuration under study."""
        result = self.estimate()
        demand = build_demand(self.server, self.workload)
        target = self.n_accelerators * self.workload.sample_rate
        req = host_requirements(demand, target)
        lines = [
            f"workload        : {self.workload.name} ({self.workload.task})",
            f"architecture    : {self.arch.name}",
            f"accelerators    : {self.n_accelerators}",
            f"batch/device    : {result.batch_size}",
            f"throughput      : {result.throughput:,.0f} samples/s "
            f"({100 * result.throughput / target:.1f}% of accelerator target)",
            f"bottleneck      : {result.bottleneck}",
            f"prep capacity   : {result.prep_rate:,.0f} samples/s",
            f"consume demand  : {result.consume_rate:,.0f} samples/s",
            "",
            "host requirements at target (normalized to DGX-2):",
            f"  CPU cores     : {req.normalized_cores:8.1f}x",
            f"  memory BW     : {req.normalized_memory_bandwidth:8.1f}x",
            f"  PCIe BW at RC : {req.normalized_pcie_bandwidth:8.1f}x",
            "",
            "per-resource prep rates (samples/s):",
        ]
        rows = sorted(result.resource_rates.items(), key=lambda kv: kv[1])
        lines.append(
            format_table(
                ["resource", "rate"],
                [
                    [name, "unbounded" if rate == float("inf") else f"{rate:,.0f}"]
                    for name, rate in rows
                ],
            )
        )
        return "\n".join(lines)

    # -- machine-readable export -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the estimate and breakdowns."""
        result = self.estimate()
        demand = build_demand(self.server, self.workload)
        breakdowns = resource_breakdown(demand)
        return {
            "workload": self.workload.name,
            "architecture": self.arch.name,
            "n_accelerators": self.n_accelerators,
            "batch_size": result.batch_size,
            "throughput": result.throughput,
            "prep_rate": result.prep_rate,
            "consume_rate": result.consume_rate,
            "bottleneck": result.bottleneck,
            "resource_rates": {
                k: (None if v == float("inf") else v)
                for k, v in result.resource_rates.items()
            },
            "breakdown_shares": {
                resource: shares(table) if sum(table.values()) > 0 else {}
                for resource, table in breakdowns.items()
            },
        }
