"""Rack-scale TrainBox and multi-job scheduling (§V-D, footnote 2).

A TrainBox rack is a TrainBox-CPU plus a set of train boxes on a
top-of-rack Ethernet switch.  The paper sketches three prep-pool
realizations; this module implements two of them together:

* an **external pool** (disaggregated FPGA boxes under the rack), and
* **borrowing from underutilized train boxes**: "if a single TrainBox
  rack serves multiple jobs or some train boxes are unused, we can
  leverage FPGAs in underutilized train boxes as a prep-pool."

Jobs are placed at box granularity (a box's accelerators belong to one
job — the clustered datapath makes boxes independent, which is also why
a job's performance equals that of a standalone TrainBox of its size).
The paper's footnote-2 observation that multi-job training has *lower*
synchronization overhead per job falls out naturally: each job's ring
only spans its own accelerators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import CapacityError, ConfigError
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.core.results import SimulationResult
from repro.dataprep.cost import profile_by_name
from repro.network.preppool import pool_fpgas_needed
from repro.workloads.registry import Workload


@dataclass(frozen=True)
class JobRequest:
    """One training job submitted to the rack."""

    job_id: str
    workload: Workload
    n_accelerators: int
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_accelerators <= 0:
            raise ConfigError("n_accelerators must be positive")


@dataclass(frozen=True)
class JobPlacement:
    """Where a job landed and how it performs."""

    job_id: str
    box_ids: tuple
    pool_fpgas_borrowed: int
    borrowed_from_idle_boxes: int
    borrowed_from_external: int
    result: SimulationResult

    @property
    def n_boxes(self) -> int:
        return len(self.box_ids)


class TrainBoxRack:
    """A rack of train boxes serving multiple concurrent jobs."""

    def __init__(
        self,
        n_boxes: int = 32,
        hw: Optional[HardwareConfig] = None,
        external_pool_fpgas: int = 0,
    ) -> None:
        if n_boxes <= 0:
            raise ConfigError("a rack needs at least one box")
        if external_pool_fpgas < 0:
            raise ConfigError("external_pool_fpgas must be >= 0")
        self.hw = hw or HardwareConfig()
        self.n_boxes = n_boxes
        self.external_pool_total = external_pool_fpgas
        self._external_free = external_pool_fpgas
        # Boxes are interchangeable; track them by synthetic id.
        self._free_boxes: List[str] = [f"rackbox{i}" for i in range(n_boxes)]
        self._placements: Dict[str, JobPlacement] = {}
        # FPGAs lent out of idle boxes, per lending job bookkeeping.
        self._idle_fpgas_lent = 0

    # -- capacity queries -------------------------------------------------

    @property
    def accs_per_box(self) -> int:
        return self.hw.accs_per_box

    @property
    def fpgas_per_box(self) -> int:
        return self.hw.fpgas_per_train_box

    @property
    def free_boxes(self) -> int:
        return len(self._free_boxes)

    @property
    def idle_fpgas_available(self) -> int:
        """FPGAs in currently idle boxes, minus those already lent."""
        return self.free_boxes * self.fpgas_per_box - self._idle_fpgas_lent

    @property
    def external_fpgas_available(self) -> int:
        return self._external_free

    def utilization(self) -> float:
        """Fraction of the rack's boxes running jobs."""
        return (self.n_boxes - self.free_boxes) / self.n_boxes

    def placements(self) -> List[JobPlacement]:
        return list(self._placements.values())

    # -- scheduling ---------------------------------------------------------

    def submit(self, request: JobRequest) -> JobPlacement:
        """Place a job on free boxes, borrowing prep throughput from the
        external pool first, then from idle boxes' FPGAs."""
        if request.job_id in self._placements:
            raise ConfigError(f"job {request.job_id} already placed")
        boxes_needed = math.ceil(request.n_accelerators / self.accs_per_box)
        if boxes_needed > self.free_boxes:
            raise CapacityError(
                f"job {request.job_id} needs {boxes_needed} boxes, "
                f"{self.free_boxes} free"
            )
        # FPGAs lent to running jobs pin their (idle) boxes: placing this
        # job must leave enough idle FPGA capacity to honor the loans.
        remaining_idle = (self.free_boxes - boxes_needed) * self.fpgas_per_box
        if remaining_idle < self._idle_fpgas_lent:
            raise CapacityError(
                f"job {request.job_id} would displace "
                f"{self._idle_fpgas_lent - remaining_idle} FPGAs lent to "
                "running jobs"
            )
        granted_boxes = tuple(self._free_boxes[:boxes_needed])

        # Size the prep shortfall exactly like the train initializer.
        workload = request.workload
        cost = workload.prep_pipeline().cost(workload.dataset_sample_spec())
        per_fpga = profile_by_name("fpga").sample_rate(cost)
        in_box = boxes_needed * self.fpgas_per_box * per_fpga
        required = request.n_accelerators * workload.sample_rate
        wanted = pool_fpgas_needed(required, in_box, per_fpga)

        # Idle-box inventory must be evaluated *after* this job claims
        # its boxes, so remove them before counting lenders.
        del self._free_boxes[:boxes_needed]
        from_external = min(wanted, self._external_free)
        from_idle = min(wanted - from_external, self.idle_fpgas_available)
        borrowed = from_external + from_idle
        self._external_free -= from_external
        self._idle_fpgas_lent += from_idle

        # The clustered datapath makes boxes self-contained, so a job on
        # k boxes performs exactly like a standalone k-box TrainBox with
        # `borrowed` pool FPGAs; simulate that equivalent server.
        result = simulate(
            TrainingScenario(
                workload,
                ArchitectureConfig.trainbox(),
                request.n_accelerators,
                batch_size=request.batch_size,
                hw=self.hw,
                pool_size=borrowed,
            )
        )
        placement = JobPlacement(
            job_id=request.job_id,
            box_ids=granted_boxes,
            pool_fpgas_borrowed=borrowed,
            borrowed_from_idle_boxes=from_idle,
            borrowed_from_external=from_external,
            result=result,
        )
        self._placements[request.job_id] = placement
        return placement

    def finish(self, job_id: str) -> None:
        """Release a finished job's boxes and borrowed FPGAs."""
        try:
            placement = self._placements.pop(job_id)
        except KeyError:
            raise ConfigError(f"job {job_id} is not running") from None
        self._free_boxes.extend(placement.box_ids)
        self._external_free += placement.borrowed_from_external
        self._idle_fpgas_lent -= placement.borrowed_from_idle_boxes
        if self._idle_fpgas_lent < 0:
            raise ConfigError("idle-FPGA ledger went negative (bug)")
