"""TrainBox (MICRO 2020) reproduction.

A production-quality Python library reproducing *TrainBox: An
Extreme-Scale Neural Network Training Server Architecture by
Systematically Balancing Operations* (Park, Jeong & Kim, MICRO 2020):
the full system simulator, every substrate it depends on (PCIe fabric,
device models, a functional data-preparation stack with a real JPEG
codec and audio front-end, ring synchronization, the Ethernet prep-pool),
and the experiment harness regenerating every table and figure of the
paper's evaluation.

Quick start::

    from repro.core import TrainingScenario, simulate
    from repro.core.config import ArchitectureConfig
    from repro.workloads import get_workload

    workload = get_workload("Resnet-50")
    baseline = simulate(TrainingScenario(
        workload, ArchitectureConfig.baseline(), n_accelerators=256))
    trainbox = simulate(TrainingScenario(
        workload, ArchitectureConfig.trainbox(), n_accelerators=256))
    print(trainbox.speedup_over(baseline))
"""

__version__ = "1.0.0"

from repro import units
from repro.errors import (
    CapacityError,
    CodecError,
    ConfigError,
    DataprepError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)

__all__ = [
    "CapacityError",
    "CodecError",
    "ConfigError",
    "DataprepError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TopologyError",
    "__version__",
    "units",
]
