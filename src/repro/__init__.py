"""TrainBox (MICRO 2020) reproduction.

A production-quality Python library reproducing *TrainBox: An
Extreme-Scale Neural Network Training Server Architecture by
Systematically Balancing Operations* (Park, Jeong & Kim, MICRO 2020):
the full system simulator, every substrate it depends on (PCIe fabric,
device models, a functional data-preparation stack with a real JPEG
codec and audio front-end, ring synchronization, the Ethernet prep-pool),
and the experiment harness regenerating every table and figure of the
paper's evaluation.

Quick start (the :mod:`repro.api` facade is the supported entry point;
``engine="des"``/``engine="flow"`` select the other engines)::

    from repro import api

    baseline = api.simulate("Resnet-50", "baseline", 256)
    trainbox = api.simulate("Resnet-50", "trainbox", 256)
    print(trainbox.speedup_over(baseline))

Observability (tracing + metrics, ``docs/observability.md``)::

    from repro import api, obs

    tracer = obs.Tracer()
    api.simulate("Resnet-50", "trainbox", 256, engine="des", trace=tracer)
    tracer.write_chrome("trace.json")
"""

__version__ = "1.0.0"

from repro import units
from repro.errors import (
    CapacityError,
    CodecError,
    ConfigError,
    DataprepError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)

__all__ = [
    "CapacityError",
    "CodecError",
    "ConfigError",
    "DataprepError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TopologyError",
    "__version__",
    "api",
    "obs",
    "units",
]


def __getattr__(name: str):
    # Lazy so that ``import repro`` stays light: the facade pulls in the
    # full engine stack, which only attribute access should pay for.
    if name in ("api", "obs"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
