"""The paper's Table I, as data.

Each workload binds together everything the simulator needs: the
accelerator's measured throughput (TPU v3-8, largest batch that fits),
the model size that drives synchronization cost, the input type that
selects dataset and preparation pipeline, and a legacy-GPU rate used by
the Figure 3 "Current platform" configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError
from repro import units
from repro.devices.accelerator import AcceleratorSpec
from repro.dataprep.ops_audio import audio_pipeline
from repro.dataprep.ops_image import image_pipeline
from repro.dataprep.pipeline import PrepPipeline, SampleSpec
from repro.datasets.imagenet import IMAGENET_LIKE
from repro.datasets.librispeech import LIBRISPEECH_LIKE


class NNType(enum.Enum):
    CNN = "CNN"
    RNN = "RNN"
    TRANSFORMER = "Transformer"


class InputType(enum.Enum):
    IMAGE = "image"
    AUDIO = "audio"
    VIDEO = "video"


@dataclass(frozen=True)
class Workload:
    """One row of Table I plus the bindings the simulator needs.

    ``batch_size`` is per accelerator ("the largest batch size that a
    single TPU v3-8 instance can run"); ``sample_rate`` is the measured
    samples/s of one TPU v3-8 at that batch.
    """

    name: str
    nn_type: NNType
    task: str
    batch_size: int
    model_bytes: float
    sample_rate: float
    input_type: InputType
    legacy_gpu_rate: float

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError(f"{self.name}: batch_size must be positive")
        if self.sample_rate <= 0:
            raise ConfigError(f"{self.name}: sample_rate must be positive")
        if self.model_bytes <= 0:
            raise ConfigError(f"{self.name}: model_bytes must be positive")

    def accelerator_spec(self, batch_half: int = 256) -> AcceleratorSpec:
        """TPU-v3-8-class accelerator calibrated to this row."""
        return AcceleratorSpec(
            name=f"tpu-v3-8/{self.name}",
            sample_rate=self.sample_rate,
            reference_batch=self.batch_size,
            batch_half=batch_half,
        )

    def legacy_accelerator_spec(self) -> AcceleratorSpec:
        """2017-era GPU (Titan XP class) for the Figure 3 baseline."""
        return AcceleratorSpec(
            name=f"titan-xp/{self.name}",
            sample_rate=self.legacy_gpu_rate,
            reference_batch=max(1, self.batch_size // 32),
            batch_half=32,
        )

    def prep_pipeline(self) -> PrepPipeline:
        """The data-preparation pipeline this workload's input needs."""
        if self.input_type is InputType.IMAGE:
            return image_pipeline()
        if self.input_type is InputType.VIDEO:
            from repro.dataprep.ops_video import video_pipeline

            return video_pipeline()
        return audio_pipeline()

    def dataset_sample_spec(self) -> SampleSpec:
        """Spec of one stored item (compressed JPEG / clip / PCM stream)."""
        if self.input_type is InputType.IMAGE:
            return IMAGENET_LIKE.sample_spec()
        if self.input_type is InputType.VIDEO:
            from repro.datasets.video import KINETICS_LIKE

            return KINETICS_LIKE.sample_spec()
        return LIBRISPEECH_LIKE.sample_spec()


def _mb(value: float) -> float:
    return value * units.MB


#: Table I.  Legacy GPU rates are scaled from the TPU numbers by the
#: roughly 30-40× per-device gap between a 2017 Titan XP and a TPU v3-8
#: on these models (Figure 2a's ASIC trend), giving the Figure 3
#: "Current" platform.
TABLE_I: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="VGG-19",
            nn_type=NNType.CNN,
            task="Image classification",
            batch_size=2048,
            model_bytes=_mb(548.0),
            sample_rate=3062,
            input_type=InputType.IMAGE,
            legacy_gpu_rate=95,
        ),
        Workload(
            name="Resnet-50",
            nn_type=NNType.CNN,
            task="Image classification",
            batch_size=8192,
            model_bytes=_mb(97.5),
            sample_rate=7431,
            input_type=InputType.IMAGE,
            legacy_gpu_rate=210,
        ),
        Workload(
            name="Inception-v4",
            nn_type=NNType.CNN,
            task="Image classification",
            batch_size=2048,
            model_bytes=_mb(162.7),
            sample_rate=1669,
            input_type=InputType.IMAGE,
            legacy_gpu_rate=52,
        ),
        Workload(
            name="RNN-S",
            nn_type=NNType.RNN,
            task="Image captioning",
            batch_size=4096,
            model_bytes=_mb(1.0),
            sample_rate=12022,
            input_type=InputType.IMAGE,
            legacy_gpu_rate=380,
        ),
        Workload(
            name="RNN-L",
            nn_type=NNType.RNN,
            task="Image captioning",
            batch_size=2048,
            model_bytes=_mb(16.0),
            sample_rate=6495,
            input_type=InputType.IMAGE,
            legacy_gpu_rate=200,
        ),
        Workload(
            name="Transformer-SR",
            nn_type=NNType.TRANSFORMER,
            task="Speech recognition",
            batch_size=512,
            model_bytes=_mb(268.3),
            sample_rate=2001,
            input_type=InputType.AUDIO,
            legacy_gpu_rate=62,
        ),
        Workload(
            name="Transformer-AA",
            nn_type=NNType.TRANSFORMER,
            task="Audio analysis",
            batch_size=512,
            model_bytes=_mb(162.5),
            sample_rate=2889,
            input_type=InputType.AUDIO,
            legacy_gpu_rate=90,
        ),
    )
}


#: Extension workloads beyond Table I — kept separate so the paper's
#: tables stay verbatim.  CNN-Video is the §V-C "new input form" example
#: carried to completion: a 3D-CNN action-recognition job on 16-frame
#: clips (rates in clips/s; a clip is ~8 effective images of prep work).
EXTENSION_WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="CNN-Video",
            nn_type=NNType.CNN,
            task="Video classification",
            batch_size=256,
            model_bytes=_mb(120.0),
            sample_rate=620,
            input_type=InputType.VIDEO,
            legacy_gpu_rate=18,
        ),
    )
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name — the seven Table I rows plus the
    extension workloads (case-insensitive; accepts the short TF-SR /
    TF-AA aliases the paper also uses)."""
    aliases = {
        "tf-sr": "Transformer-SR",
        "tf-aa": "Transformer-AA",
        "resnet50": "Resnet-50",
        "vgg19": "VGG-19",
    }
    canonical = aliases.get(name.lower(), name)
    for registry in (TABLE_I, EXTENSION_WORKLOADS):
        for key, workload in registry.items():
            if key.lower() == canonical.lower():
                return workload
    known = sorted(TABLE_I) + sorted(EXTENSION_WORKLOADS)
    raise ConfigError(f"unknown workload {name!r}; known: {known}")


def workload_names() -> List[str]:
    return list(TABLE_I)


def image_workloads() -> List[Workload]:
    return [w for w in TABLE_I.values() if w.input_type is InputType.IMAGE]


def audio_workloads() -> List[Workload]:
    return [w for w in TABLE_I.values() if w.input_type is InputType.AUDIO]
