"""Workload registry: the seven Table I models and their properties."""

from repro.workloads.registry import (
    TABLE_I,
    InputType,
    NNType,
    Workload,
    audio_workloads,
    get_workload,
    image_workloads,
    workload_names,
)
from repro.workloads.models import estimated_flops_per_sample, implied_utilization

__all__ = [
    "InputType",
    "NNType",
    "TABLE_I",
    "Workload",
    "audio_workloads",
    "estimated_flops_per_sample",
    "get_workload",
    "image_workloads",
    "implied_utilization",
    "workload_names",
]
