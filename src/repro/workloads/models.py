"""Per-model compute estimates, for sanity-checking Table I.

These are literature FLOP counts for one training sample (forward +
backward ≈ 3× forward).  They are not used by the simulator — the paper
measures accelerator throughput instead of deriving it — but the tests
use them to check that Table I's rates imply plausible accelerator
utilization, which guards against transcription errors in the registry.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError

#: Forward-pass GFLOPs per sample (224×224 inputs for CNNs; typical
#: sequence geometry for the RNN/Transformer rows).
_FORWARD_GFLOPS: Dict[str, float] = {
    "VGG-19": 19.6,
    "Resnet-50": 4.1,
    "Inception-v4": 12.3,
    "RNN-S": 0.6,
    "RNN-L": 2.4,
    "Transformer-SR": 30.0,
    "Transformer-AA": 21.0,
}

#: TPU v3-8 peak (8 cores × 52.5 TFLOPS bf16 ≈ 420 TFLOPS).
TPU_V3_8_PEAK_FLOPS = 420e12

#: forward + backward ≈ 3× forward.
TRAIN_FLOPS_MULTIPLIER = 3.0


def estimated_flops_per_sample(name: str) -> float:
    """Training FLOPs for one sample of the named workload."""
    try:
        forward = _FORWARD_GFLOPS[name]
    except KeyError:
        raise ConfigError(
            f"no FLOP estimate for {name!r}; known: {sorted(_FORWARD_GFLOPS)}"
        ) from None
    return forward * 1e9 * TRAIN_FLOPS_MULTIPLIER


def implied_utilization(name: str, sample_rate: float) -> float:
    """Fraction of TPU v3-8 peak implied by a measured sample rate."""
    if sample_rate <= 0:
        raise ConfigError("sample_rate must be positive")
    return sample_rate * estimated_flops_per_sample(name) / TPU_V3_8_PEAK_FLOPS
