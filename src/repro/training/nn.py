"""A small fully-connected network with manual backprop.

Deliberately minimal: enough model capacity to overfit a small synthetic
image dataset (which is what makes the augmentation experiment of
Figure 5 reproducible), with flat-parameter accessors so the gradient
vector can travel through :mod:`repro.sync.ring` exactly like the paper's
model-synchronization step.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and d(loss)/d(logits)."""
    if logits.ndim != 2:
        raise ConfigError(f"logits must be (batch, classes), got {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ConfigError("labels/logits batch mismatch")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = -np.log(probs[np.arange(n), labels] + 1e-12).mean()
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(loss), grad / n


class MLP:
    """Fully-connected ReLU network with a linear output layer."""

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0) -> None:
        if len(layer_sizes) < 2:
            raise ConfigError("need at least input and output sizes")
        if any(s <= 0 for s in layer_sizes):
            raise ConfigError(f"layer sizes must be positive: {layer_sizes}")
        rng = np.random.default_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, (fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # -- forward / backward ---------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a (batch, features) input."""
        h = x
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
        return h @ self.weights[-1] + self.biases[-1]

    def loss_and_grads(
        self, x: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """Loss plus gradients in [w0, b0, w1, b1, ...] order."""
        activations = [x]
        h = x
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(h @ w + b, 0.0)
            activations.append(h)
        logits = h @ self.weights[-1] + self.biases[-1]
        loss, dlogits = softmax_cross_entropy(logits, labels)

        grads: List[np.ndarray] = []
        delta = dlogits
        for layer in range(len(self.weights) - 1, -1, -1):
            a = activations[layer]
            grads.append(delta.sum(axis=0))       # bias
            grads.append(a.T @ delta)             # weight
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (a > 0)
        grads.reverse()
        return loss, grads

    def apply_grads(self, grads: Sequence[np.ndarray], lr: float) -> None:
        """One SGD step with the given gradients."""
        if len(grads) != 2 * len(self.weights):
            raise ConfigError("gradient list has the wrong length")
        for i in range(len(self.weights)):
            self.weights[i] -= lr * grads[2 * i]
            self.biases[i] -= lr * grads[2 * i + 1]

    # -- evaluation -------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(x) == labels).mean())

    def top_k_accuracy(self, x: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
        """Top-k accuracy (Figure 5 plots top-5)."""
        logits = self.forward(x)
        k = min(k, logits.shape[1])
        top = np.argsort(-logits, axis=1)[:, :k]
        return float((top == labels[:, None]).any(axis=1).mean())

    # -- flat parameter / gradient views ----------------------------------

    def flat_params(self) -> np.ndarray:
        parts = []
        for w, b in zip(self.weights, self.biases):
            parts.append(w.reshape(-1))
            parts.append(b.reshape(-1))
        return np.concatenate(parts)

    def set_flat_params(self, flat: np.ndarray) -> None:
        expected = sum(w.size + b.size for w, b in zip(self.weights, self.biases))
        if flat.shape != (expected,):
            raise ConfigError(f"expected {expected} params, got {flat.shape}")
        offset = 0
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            self.weights[i] = flat[offset : offset + w.size].reshape(w.shape).copy()
            offset += w.size
            self.biases[i] = flat[offset : offset + b.size].reshape(b.shape).copy()
            offset += b.size

    @staticmethod
    def flatten_grads(grads: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate([g.reshape(-1) for g in grads])

    def unflatten_grads(self, flat: np.ndarray) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        offset = 0
        for w, b in zip(self.weights, self.biases):
            out.append(flat[offset : offset + w.size].reshape(w.shape))
            offset += w.size
            out.append(flat[offset : offset + b.size].reshape(b.shape))
            offset += b.size
        return out

    def clone(self) -> "MLP":
        """A structurally identical copy with the same parameters."""
        twin = MLP(self.layer_sizes, seed=0)
        twin.set_flat_params(self.flat_params())
        return twin

    @property
    def model_bytes(self) -> int:
        """Size of the parameter vector in bytes (the sync payload)."""
        return int(self.flat_params().nbytes)
