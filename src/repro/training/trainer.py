"""Data-parallel SGD and the Figure 5 augmentation experiment.

The trainer replicates an MLP across ``n`` simulated ranks; each step,
every rank computes gradients on its own micro-batch, the flat gradient
vectors are summed with the package's ring all-reduce — the same
algorithm the synchronization latency model prices — averaged, and
applied identically everywhere (a test asserts the replicas never
diverge).

The augmentation experiment reproduces Figure 5's claim end to end: two
identical training runs on a small synthetic image dataset, one feeding
fixed center crops (no augmentation), one feeding the package's actual
preparation pipeline (random crop, mirror, Gaussian noise) — with the
augmented run reaching clearly higher held-out accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.datasets.imagenet import SyntheticImageDataset
from repro.dataprep.ops_image import CastToFloat, GaussianNoise, Mirror, RandomCrop
from repro.dataprep.pipeline import PrepPipeline
from repro.sync.ring import ring_allreduce
from repro.training.nn import MLP


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of one run."""

    epochs: int = 20
    lr: float = 0.05
    batch_size: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ConfigError("epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ConfigError("learning rate must be positive")


class DataParallelTrainer:
    """Synchronous data-parallel SGD over simulated ranks.

    Works with any model satisfying the flat-parameter protocol
    (``clone``, ``flat_params``/``set_flat_params``, ``loss_and_grads``,
    ``apply_grads``, ``unflatten_grads``) — both :class:`MLP` and
    :class:`repro.training.cnn.ConvNet` do.
    """

    def __init__(self, model, n_ranks: int = 1) -> None:
        if n_ranks < 1:
            raise ConfigError("need at least one rank")
        self.n_ranks = n_ranks
        self.replicas = [model.clone() for _ in range(n_ranks)]

    @property
    def model(self):
        """Rank 0's replica (all replicas are identical)."""
        return self.replicas[0]

    def step(self, batches: List[Tuple[np.ndarray, np.ndarray]], lr: float) -> float:
        """One synchronous step: per-rank gradients, ring all-reduce,
        averaged update.  Returns the mean loss across ranks."""
        if len(batches) != self.n_ranks:
            raise ConfigError(f"expected {self.n_ranks} micro-batches")
        losses = []
        flats = []
        for replica, (x, y) in zip(self.replicas, batches):
            loss, grads = replica.loss_and_grads(x, y)
            losses.append(loss)
            flats.append(MLP.flatten_grads(grads))
        ring_allreduce(flats)  # in-place sum on every rank
        for replica, flat in zip(self.replicas, flats):
            replica.apply_grads(replica.unflatten_grads(flat / self.n_ranks), lr)
        return float(np.mean(losses))

    def replicas_in_sync(self, tolerance: float = 1e-9) -> bool:
        """True when every replica holds the same parameters."""
        reference = self.replicas[0].flat_params()
        return all(
            np.allclose(r.flat_params(), reference, atol=tolerance)
            for r in self.replicas[1:]
        )


def _prepare_batch(
    images: List[np.ndarray],
    pipeline: PrepPipeline,
    rng: np.random.Generator,
    flatten: bool = True,
) -> np.ndarray:
    """Run the preparation pipeline; flatten for MLPs, keep (and center)
    the spatial layout for convolutional models.

    Batches go through the vectorized ``run_batch`` engine, which spawns
    one RNG stream per sample: a sample's augmentation depends only on
    the parent seed state and its position, not on how the batch is
    sliced across ranks."""
    prepared = pipeline.run_batch(images, rng)
    if flatten:
        return np.stack([p.reshape(-1) for p in prepared])
    return np.stack(prepared) - 0.5


def augmentation_pipeline(
    crop: int, augment: bool, noise_sigma: float = 16.0
) -> PrepPipeline:
    """The on-line preparation used during training.

    With ``augment``: random crop + mirror + Gaussian noise + cast — the
    image augmentation engine of Table II.  Without: a deterministic
    center crop (probability-0 mirror, σ=0 noise) + cast, i.e. formatting
    only.
    """
    if augment:
        ops = [
            RandomCrop(crop, crop),
            Mirror(0.5),
            GaussianNoise(noise_sigma),
            CastToFloat(),
        ]
    else:
        ops = [CenterCrop(crop, crop), CastToFloat()]
    return PrepPipeline(ops, name="train-aug" if augment else "train-noaug")


@dataclass
class CenterCrop(RandomCrop):
    """Deterministic crop from the image center (the no-augmentation
    formatting path)."""

    name: str = "center_crop"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        h, w = data.shape[:2]
        if h < self.out_height or w < self.out_width:
            raise ConfigError(
                f"cannot crop {h}x{w} to {self.out_height}x{self.out_width}"
            )
        top = (h - self.out_height) // 2
        left = (w - self.out_width) // 2
        return data[top : top + self.out_height, left : left + self.out_width]

    def offsets(
        self, shape: Tuple[int, ...], rngs
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Deterministic center origin for every sample; the inherited
        # apply_batch gather then matches apply exactly.
        h, w = shape[:2]
        n = len(rngs)
        return (
            np.full(n, (h - self.out_height) // 2, dtype=np.intp),
            np.full(n, (w - self.out_width) // 2, dtype=np.intp),
        )


def augmentation_experiment(
    num_train: int = 128,
    num_test: int = 400,
    image_size: int = 32,
    crop: int = 20,
    num_classes: int = 16,
    hidden: int = 96,
    n_ranks: int = 4,
    config: Optional[TrainConfig] = None,
    top_k: int = 5,
    noise_sigma: float = 16.0,
    model: str = "mlp",
) -> Dict[str, List[float]]:
    """Reproduce Figure 5: per-epoch top-k test accuracy with and without
    data augmentation on a deliberately small training set.

    ``model`` selects "mlp" (flattened inputs) or "cnn" (the conv net,
    the paper's model class — its built-in translation equivariance makes
    it less dependent on crop augmentation, an instructive contrast).
    Returns ``{"with_augmentation": [...], "without_augmentation": [...]}``
    with one accuracy per epoch.
    """
    if model not in ("mlp", "cnn"):
        raise ConfigError(f"model must be 'mlp' or 'cnn', got {model!r}")
    config = config or TrainConfig()
    flatten = model == "mlp"
    dataset = SyntheticImageDataset(
        num_items=num_train + num_test,
        height=image_size,
        width=image_size,
        num_classes=num_classes,
        seed=config.seed,
    )
    train_items = [dataset.raw_item(i) for i in range(num_train)]
    test_items = [dataset.raw_item(num_train + i) for i in range(num_test)]

    # Held-out items are not center-aligned or noise-free in the wild:
    # each test image gets one fixed random crop and mild noise (seeded,
    # so evaluation is deterministic).  Augmented training learns these
    # invariances; center-crop-only training does not — the Figure 5 gap.
    eval_rng = np.random.default_rng(config.seed + 1)
    eval_pipe = PrepPipeline(
        [RandomCrop(crop, crop), GaussianNoise(noise_sigma), CastToFloat()],
        name="eval",
    )
    x_test = _prepare_batch(
        [img for img, _ in test_items], eval_pipe, eval_rng, flatten=flatten
    )
    y_test = np.array([label for _, label in test_items])

    curves: Dict[str, List[float]] = {}
    for augment in (True, False):
        key = "with_augmentation" if augment else "without_augmentation"
        pipeline = augmentation_pipeline(crop, augment, noise_sigma)
        if flatten:
            net = MLP([crop * crop * 3, hidden, num_classes], seed=config.seed)
        else:
            from repro.training.cnn import ConvNet

            net = ConvNet(
                (crop, crop, 3), channels=(8, 12), num_classes=num_classes,
                seed=config.seed,
            )
        trainer = DataParallelTrainer(net, n_ranks=n_ranks)
        rng = np.random.default_rng(config.seed + 2)
        accuracies: List[float] = []
        per_rank = max(1, config.batch_size // n_ranks)
        for _ in range(config.epochs):
            order = rng.permutation(num_train)
            for start in range(0, num_train, per_rank * n_ranks):
                idx = order[start : start + per_rank * n_ranks]
                if idx.size < n_ranks:
                    continue
                batches = []
                for rank in range(n_ranks):
                    rank_idx = idx[rank::n_ranks]
                    images = [train_items[i][0] for i in rank_idx]
                    labels = np.array([train_items[i][1] for i in rank_idx])
                    batches.append(
                        (
                            _prepare_batch(images, pipeline, rng, flatten=flatten),
                            labels,
                        )
                    )
                trainer.step(batches, config.lr)
            accuracies.append(trainer.model.top_k_accuracy(x_test, y_test, k=top_k))
        curves[key] = accuracies
    return curves
