"""Mini training substrate.

A numpy MLP, a data-parallel SGD trainer whose gradient exchange runs on
the package's own ring all-reduce, and the augmentation-accuracy
experiment behind Figure 5 ("training with data augmentation shows 29.1%
point higher accuracy than training without it").
"""

from repro.training.cnn import ConvNet
from repro.training.large_batch import BatchScalingResult, batch_scaling_experiment
from repro.training.nn import MLP, softmax_cross_entropy
from repro.training.trainer import (
    DataParallelTrainer,
    TrainConfig,
    augmentation_experiment,
)

__all__ = [
    "BatchScalingResult",
    "ConvNet",
    "DataParallelTrainer",
    "MLP",
    "TrainConfig",
    "augmentation_experiment",
    "batch_scaling_experiment",
    "softmax_cross_entropy",
]
