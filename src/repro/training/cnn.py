"""A small convolutional network with manual backprop.

The paper's accuracy experiment (Figure 5) runs on a CNN; this gives the
training substrate one too: conv3×3 → ReLU → 2×2 max-pool, twice, then a
dense classifier.  Convolutions run via im2col so the numpy matmuls do
the heavy lifting, and the backward pass is finite-difference-checked by
the tests.  The class satisfies the same flat-parameter protocol as
:class:`repro.training.nn.MLP`, so the data-parallel trainer and the
ring all-reduce work unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.training.nn import softmax_cross_entropy


def _im2col(x: np.ndarray, kernel: int) -> np.ndarray:
    """(N, H, W, C) → (N, H-k+1, W-k+1, k*k*C) patch matrix (valid)."""
    n, h, w, c = x.shape
    oh, ow = h - kernel + 1, w - kernel + 1
    shape = (n, oh, ow, kernel, kernel, c)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[1],
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return patches.reshape(n, oh, ow, kernel * kernel * c)


def _col2im(
    grad_patches: np.ndarray, input_shape: Tuple[int, int, int, int], kernel: int
) -> np.ndarray:
    """Scatter-add the im2col gradient back onto the input tensor."""
    n, h, w, c = input_shape
    oh, ow = h - kernel + 1, w - kernel + 1
    grad = np.zeros(input_shape)
    patches = grad_patches.reshape(n, oh, ow, kernel, kernel, c)
    for ky in range(kernel):
        for kx in range(kernel):
            grad[:, ky : ky + oh, kx : kx + ow, :] += patches[:, :, :, ky, kx, :]
    return grad


class ConvNet:
    """conv(k=3) → ReLU → maxpool(2) → conv(k=3) → ReLU → maxpool(2) →
    flatten → dense logits."""

    KERNEL = 3
    POOL = 2

    def __init__(
        self,
        input_shape: Tuple[int, int, int],
        channels: Sequence[int] = (8, 16),
        num_classes: int = 10,
        seed: int = 0,
    ) -> None:
        h, w, c = input_shape
        if len(channels) != 2:
            raise ConfigError("ConvNet uses exactly two conv stages")
        if num_classes <= 0:
            raise ConfigError("num_classes must be positive")
        for stage in range(2):
            h = (h - self.KERNEL + 1) // self.POOL
            w = (w - self.KERNEL + 1) // self.POOL
            if h <= 0 or w <= 0:
                raise ConfigError(f"input {input_shape} too small for the stack")
        self.input_shape = tuple(input_shape)
        self.channels = tuple(channels)
        self.num_classes = num_classes
        self._out_hw = (h, w)
        rng = np.random.default_rng(seed)
        k = self.KERNEL
        c0, c1 = channels
        self.w1 = rng.normal(0, np.sqrt(2.0 / (k * k * c)), (k * k * c, c0))
        self.b1 = np.zeros(c0)
        self.w2 = rng.normal(0, np.sqrt(2.0 / (k * k * c0)), (k * k * c0, c1))
        self.b2 = np.zeros(c1)
        flat_in = h * w * c1
        self.w3 = rng.normal(0, np.sqrt(2.0 / flat_in), (flat_in, num_classes))
        self.b3 = np.zeros(num_classes)

    # -- forward ----------------------------------------------------------

    def _conv_forward(self, x, weight, bias):
        patches = _im2col(x, self.KERNEL)
        pre = patches @ weight + bias
        return patches, pre

    def _pool_forward(self, x):
        n, h, w, c = x.shape
        p = self.POOL
        th, tw = h // p, w // p
        tiles = x[:, : th * p, : tw * p, :].reshape(n, th, p, tw, p, c)
        pooled = tiles.max(axis=(2, 4))
        mask = tiles == pooled[:, :, None, :, None, :]
        return pooled, mask, (n, h, w, c)

    def _pool_backward(self, grad, mask, shape):
        n, h, w, c = shape
        p = self.POOL
        th, tw = h // p, w // p
        expanded = mask * grad[:, :, None, :, None, :]
        out = np.zeros(shape)
        out[:, : th * p, : tw * p, :] = expanded.reshape(n, th * p, tw * p, c)
        return out

    def _forward_pass(self, x: np.ndarray):
        if x.ndim != 4 or x.shape[1:] != self.input_shape:
            raise ConfigError(
                f"expected (batch, {self.input_shape}), got {x.shape}"
            )
        cache = {}
        cache["p1"], pre1 = self._conv_forward(x, self.w1, self.b1)
        act1 = np.maximum(pre1, 0.0)
        cache["pre1"] = pre1
        pool1, cache["m1"], cache["s1"] = self._pool_forward(act1)
        cache["p2"], pre2 = self._conv_forward(pool1, self.w2, self.b2)
        act2 = np.maximum(pre2, 0.0)
        cache["pre2"] = pre2
        cache["pool1_shape"] = pool1.shape
        pool2, cache["m2"], cache["s2"] = self._pool_forward(act2)
        cache["pool2_shape"] = pool2.shape
        flat = pool2.reshape(x.shape[0], -1)
        cache["flat"] = flat
        logits = flat @ self.w3 + self.b3
        return logits, cache

    def forward(self, x: np.ndarray) -> np.ndarray:
        logits, _ = self._forward_pass(x)
        return logits

    # -- backward -----------------------------------------------------------

    def loss_and_grads(
        self, x: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, List[np.ndarray]]:
        """Loss plus gradients in [w1, b1, w2, b2, w3, b3] order."""
        logits, cache = self._forward_pass(x)
        loss, dlogits = softmax_cross_entropy(logits, labels)

        gw3 = cache["flat"].T @ dlogits
        gb3 = dlogits.sum(axis=0)
        dflat = dlogits @ self.w3.T
        dpool2 = dflat.reshape(cache["pool2_shape"])
        dact2 = self._pool_backward(dpool2, cache["m2"], cache["s2"])
        dpre2 = dact2 * (cache["pre2"] > 0)
        n = x.shape[0]
        p2 = cache["p2"].reshape(-1, self.w2.shape[0])
        gw2 = p2.T @ dpre2.reshape(-1, self.w2.shape[1])
        gb2 = dpre2.sum(axis=(0, 1, 2))
        dpatches2 = dpre2 @ self.w2.T
        dpool1 = _col2im(dpatches2, cache["pool1_shape"], self.KERNEL)
        dact1 = self._pool_backward(dpool1, cache["m1"], cache["s1"])
        dpre1 = dact1 * (cache["pre1"] > 0)
        p1 = cache["p1"].reshape(-1, self.w1.shape[0])
        gw1 = p1.T @ dpre1.reshape(-1, self.w1.shape[1])
        gb1 = dpre1.sum(axis=(0, 1, 2))
        return loss, [gw1, gb1, gw2, gb2, gw3, gb3]

    # -- parameter protocol ---------------------------------------------------

    def _params(self) -> List[np.ndarray]:
        return [self.w1, self.b1, self.w2, self.b2, self.w3, self.b3]

    def apply_grads(self, grads: Sequence[np.ndarray], lr: float) -> None:
        params = self._params()
        if len(grads) != len(params):
            raise ConfigError("gradient list has the wrong length")
        for param, grad in zip(params, grads):
            param -= lr * grad

    def flat_params(self) -> np.ndarray:
        return np.concatenate([p.reshape(-1) for p in self._params()])

    def set_flat_params(self, flat: np.ndarray) -> None:
        params = self._params()
        expected = sum(p.size for p in params)
        if flat.shape != (expected,):
            raise ConfigError(f"expected {expected} params, got {flat.shape}")
        offset = 0
        for param in params:
            param[...] = flat[offset : offset + param.size].reshape(param.shape)
            offset += param.size

    @staticmethod
    def flatten_grads(grads: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate([g.reshape(-1) for g in grads])

    def unflatten_grads(self, flat: np.ndarray) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        offset = 0
        for param in self._params():
            out.append(flat[offset : offset + param.size].reshape(param.shape))
            offset += param.size
        return out

    def clone(self) -> "ConvNet":
        """A structurally identical copy with the same parameters."""
        twin = ConvNet(
            self.input_shape, self.channels, self.num_classes, seed=0
        )
        twin.set_flat_params(self.flat_params())
        return twin

    # -- evaluation ------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(x) == labels).mean())

    def top_k_accuracy(self, x: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
        logits = self.forward(x)
        k = min(k, logits.shape[1])
        top = np.argsort(-logits, axis=1)[:, :k]
        return float((top == labels[:, None]).any(axis=1).mean())

    @property
    def model_bytes(self) -> int:
        return int(self.flat_params().nbytes)
