"""Large-batch training with linear learning-rate scaling (§II-B).

TrainBox's premise relies on the third enabler the paper lists: "recent
efforts prove that using a proper learning rate can remove [the]
instability" of large batches, letting each accelerator run the largest
batch that fits (Table I) and shrinking the *relative* synchronization
cost.  This experiment reproduces the effect at our scale: growing the
batch k× while scaling the learning rate k× tracks the small-batch
accuracy, while growing the batch with an unscaled rate undertrains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.datasets.imagenet import SyntheticImageDataset
from repro.dataprep.ops_image import CastToFloat
from repro.dataprep.pipeline import PrepPipeline
from repro.training.nn import MLP
from repro.training.trainer import CenterCrop


@dataclass(frozen=True)
class BatchScalingResult:
    """Final test accuracy of each arm."""

    small_batch: float
    large_batch_scaled_lr: float
    large_batch_unscaled_lr: float

    def scaling_recovers_accuracy(self, tolerance: float = 0.08) -> bool:
        """The paper's enabling claim at our scale."""
        return self.large_batch_scaled_lr >= self.small_batch - tolerance

    def unscaled_underperforms(self, margin: float = 0.02) -> bool:
        return (
            self.large_batch_unscaled_lr
            <= self.large_batch_scaled_lr - margin
        )


def _prepare(items, pipeline, rng):
    xs = [pipeline.run(img, rng).reshape(-1) for img, _ in items]
    ys = [label for _, label in items]
    return np.stack(xs), np.array(ys)


def _train_arm(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    batch: int,
    lr: float,
    epochs: int,
    hidden: int,
    seed: int,
    warmup_epochs: int = 1,
) -> float:
    """SGD with the gradual-warmup schedule of the paper's citation
    (Goyal et al.): the learning rate ramps linearly over the first
    epoch(s), which is what makes large scaled rates stable."""
    model = MLP([x_train.shape[1], hidden, int(y_train.max()) + 1], seed=seed)
    rng = np.random.default_rng(seed + 1)
    n = x_train.shape[0]
    steps_per_epoch = max(1, (n + batch - 1) // batch)
    warmup_steps = warmup_epochs * steps_per_epoch
    step = 0
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            _, grads = model.loss_and_grads(x_train[idx], y_train[idx])
            ramp = min(1.0, (step + 1) / warmup_steps)
            model.apply_grads(grads, lr * ramp)
            step += 1
    return model.accuracy(x_test, y_test)


def _train_arm_kwargs(kwargs: dict) -> float:
    """Module-level adapter so arms can cross a process-pool boundary."""
    return _train_arm(**kwargs)


def batch_scaling_experiment(
    num_train: int = 512,
    num_test: int = 256,
    image_size: int = 16,
    num_classes: int = 8,
    hidden: int = 48,
    small_batch: int = 8,
    scale: int = 8,
    base_lr: float = 0.006,
    epochs: int = 20,
    seed: int = 0,
    n_jobs: int = 1,
) -> BatchScalingResult:
    """Run the three arms on a fixed preparation (no augmentation, so
    the only variable is the batch/LR schedule).

    The arms are independent (each seeds its own model and shuffle), so
    ``n_jobs > 1`` runs them through the sweep engine's process map.
    """
    if scale <= 1:
        raise ConfigError("scale must be > 1")
    dataset = SyntheticImageDataset(
        num_items=num_train + num_test,
        height=image_size,
        width=image_size,
        num_classes=num_classes,
        seed=seed,
    )
    pipeline = PrepPipeline(
        [CenterCrop(image_size, image_size), CastToFloat()], name="fixed"
    )
    rng = np.random.default_rng(seed)
    x_train, y_train = _prepare(
        [dataset.raw_item(i) for i in range(num_train)], pipeline, rng
    )
    x_test, y_test = _prepare(
        [dataset.raw_item(num_train + i) for i in range(num_test)], pipeline, rng
    )

    common = dict(
        x_train=x_train, y_train=y_train, x_test=x_test, y_test=y_test,
        epochs=epochs, hidden=hidden, seed=seed,
    )
    arms = [
        dict(batch=small_batch, lr=base_lr, **common),
        dict(batch=small_batch * scale, lr=base_lr * scale, **common),
        dict(batch=small_batch * scale, lr=base_lr, **common),
    ]
    from repro.core.sweeps import parallel_map

    small, scaled, unscaled = parallel_map(
        _train_arm_kwargs, arms, n_jobs=n_jobs
    )
    return BatchScalingResult(
        small_batch=small,
        large_batch_scaled_lr=scaled,
        large_batch_unscaled_lr=unscaled,
    )
