"""Content-addressed result caching and in-process memoization.

The evaluation harness replays large grids of simulator runs (workload ×
architecture × accelerator count), and most of the cost of a point is
deterministic recomputation: topology construction, demand pricing, the
solver itself.  This module provides the two caching layers the sweep
engine (:mod:`repro.core.sweeps`) stacks on top of that grid:

* an **in-process memo** — a plain keyed registry for objects that are
  expensive to build and safe to share within one process (server
  models, per-server demand vectors).  It subsumes the old
  ``lru_cache``-based ``build_server_cached``;
* a **persistent on-disk result cache** — simulation results keyed by a
  content hash of *everything that determines the answer* (hardware
  config, architecture config, workload row, scale, engine), so a
  changed field can never serve a stale entry.  Entries carry a schema
  version; entries from older schemas (or corrupted files) are discarded
  on read, never trusted and never fatal.

Keys are built with :func:`fingerprint`, a canonical SHA-256 over a
JSON-stable encoding of dataclasses/enums/floats.  Bump
:data:`CACHE_VERSION` whenever the meaning of a cached result changes
(solver semantics, result schema, calibration constants) so old caches
self-invalidate.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.errors import ConfigError

#: Schema version stamped into every persistent entry.  Any change to
#: result dataclasses, solver behaviour, or calibrated constants that
#: affects cached values must bump this.
#: v2: DesResult normalized onto the shared SimulationOutcome schema
#: (resource_utilization + scenario identity + rate fields).
#: v3: the deprecated ``station_utilization`` alias is gone from
#: DesResult payloads, and the service layer stores whole-response
#: payloads keyed by request fingerprint in the same store.
CACHE_VERSION = 3


# -- canonical fingerprinting ------------------------------------------------


def canonicalize(obj: Any) -> Any:
    """A JSON-encodable canonical form of ``obj``.

    Dataclasses carry their type name and every field (so adding or
    changing a field changes the fingerprint), enums their class and
    value, floats their exact ``repr``; dict keys are sorted.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": canonicalize(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        body["__dataclass__"] = type(obj).__name__
        return body
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                (str(k), canonicalize(v)) for k, v in obj.items()
            )
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonicalize(v)) for v in obj)}
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    raise ConfigError(f"cannot fingerprint object of type {type(obj).__name__}")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    blob = json.dumps(
        canonicalize(list(parts)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- in-process memoization --------------------------------------------------

_MEMO: Dict[Any, Any] = {}


def memoized(key: Any, factory: Callable[[], Any]) -> Any:
    """Return the memoized value for ``key``, building it on first use.

    ``key`` must be hashable (frozen config dataclasses are); the value
    is shared by every caller, so factories must produce objects that
    are treated as read-only by convention.

    Reentrancy: concurrent service threads may race the first build of a
    key.  Both builds are valid (factories are pure), and ``setdefault``
    guarantees every caller still ends up sharing the *same* canonical
    object — the loser's copy is dropped.
    """
    try:
        return _MEMO[key]
    except KeyError:
        return _MEMO.setdefault(key, factory())


def clear_memo() -> None:
    """Drop every in-process memo entry (tests, benchmark cold starts)."""
    _MEMO.clear()


def memo_size() -> int:
    return len(_MEMO)


# -- cross-process locking ---------------------------------------------------


class LockTimeout(ConfigError):
    """A :class:`CacheLock` could not be acquired within its timeout."""


class CacheLock:
    """Single-writer advisory lock for a shared cache directory.

    Implemented as an atomically-created lock *directory* (``os.mkdir``
    is atomic on POSIX and Windows alike) stamped with the owner's pid.
    A lock whose owner process is dead, or whose stamp is older than
    ``stale_after`` seconds, is **reclaimed**: the contender atomically
    renames the stale lock aside (only one renamer can win) and retries,
    so a writer killed mid-put can never wedge the cache.

    Usage::

        with CacheLock(path.with_suffix(".lock")):
            ...  # single writer for the guarded entry
    """

    def __init__(
        self,
        path: os.PathLike,
        timeout: float = 10.0,
        stale_after: float = 30.0,
        poll: float = 0.005,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll = poll

    def _stamp(self) -> None:
        try:
            (self.path / "owner").write_text(str(os.getpid()))
        except OSError:
            pass

    def _is_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # vanished: owner released it, not stale
        if age > self.stale_after:
            return True
        try:
            pid = int((self.path / "owner").read_text())
        except (OSError, ValueError):
            # Not yet stamped; judge by age alone (above).
            return False
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # owner died without releasing
        except (PermissionError, OSError):
            return False
        return False

    def _reclaim(self) -> None:
        """Atomically move the stale lock aside and delete it; only one
        contender's rename can succeed, so reclaim itself never races."""
        trash = self.path.with_name(
            f"{self.path.name}.stale-{os.getpid()}-{time.monotonic_ns()}"
        )
        try:
            os.rename(self.path, trash)
        except OSError:
            return  # someone else reclaimed (or the owner released)
        obs.inc("cache.locks_reclaimed")
        try:
            for child in trash.iterdir():
                child.unlink()
            trash.rmdir()
        except OSError:
            pass

    def acquire(self) -> "CacheLock":
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                os.mkdir(self.path)
                self._stamp()
                obs.inc("cache.locks_acquired")
                return self
            except FileExistsError:
                if self._is_stale():
                    self._reclaim()
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not acquire cache lock {self.path} within "
                        f"{self.timeout:g}s (live owner holds it)"
                    ) from None
                time.sleep(self.poll)

    def release(self) -> None:
        try:
            (self.path / "owner").unlink()
        except OSError:
            pass
        try:
            os.rmdir(self.path)
        except OSError:
            pass

    def __enter__(self) -> "CacheLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


# -- persistent result cache -------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discards: int = 0
    quarantined: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.discards = 0
        self.quarantined = 0


class ResultCache:
    """A directory of JSON entries keyed by content hash.

    Entries are written atomically (temp file + rename) and validated on
    read: wrong schema version, unparseable JSON, or a payload that does
    not echo its own key are *discarded* (the lookup reports a miss)
    rather than raised — a corrupted cache must never poison or crash a
    sweep.  The invalid file itself is **quarantined**, renamed to
    ``<entry>.corrupt`` (counted as ``cache.quarantined``), so operators
    can see and inspect disk-tier rot instead of it silently vanishing;
    quarantined files are invisible to lookups and removed by
    :meth:`clear`.

    Concurrency: reads are always safe (writes land via atomic rename,
    and a torn or half-written entry fails validation and reports a
    miss).  With ``locked=True`` every ``put`` additionally takes a
    per-key :class:`CacheLock`, making the directory safe to **share
    between processes** (the service's shared tier): exactly one writer
    touches an entry at a time, and a lock orphaned by a killed writer
    is reclaimed instead of wedging the store.
    """

    def __init__(
        self,
        directory: os.PathLike,
        version: int = CACHE_VERSION,
        locked: bool = False,
        lock_timeout: float = 10.0,
        lock_stale_after: float = 30.0,
    ):
        self.directory = Path(directory)
        self.version = version
        self.locked = locked
        self.lock_timeout = lock_timeout
        self.lock_stale_after = lock_stale_after
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def lock(self, key: str) -> CacheLock:
        """The per-entry writer lock (independent of ``locked`` mode)."""
        path = self._path(key)
        return CacheLock(
            path.with_name(path.name + ".lock"),
            timeout=self.lock_timeout,
            stale_after=self.lock_stale_after,
        )

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or None on miss."""
        path = self._path(key)
        with obs.span("cache.get", cat="cache"):
            try:
                raw = path.read_text()
            except OSError:
                self.stats.misses += 1
                obs.inc("cache.misses")
                return None
            try:
                entry = json.loads(raw)
                if (
                    not isinstance(entry, dict)
                    or entry.get("version") != self.version
                    or entry.get("key") != key
                    or "result" not in entry
                ):
                    raise ValueError("stale or malformed cache entry")
            except (ValueError, TypeError):
                self.stats.discards += 1
                self.stats.misses += 1
                obs.inc("cache.discards")
                obs.inc("cache.misses")
                self._quarantine(path)
                return None
            self.stats.hits += 1
            obs.inc("cache.hits")
            return entry["result"]

    def get_many(self, keys) -> dict:
        """Batch lookup: ``{key: payload}`` for every hit.

        Misses are simply absent from the returned dict (no ``None``
        placeholders), so ``key in found`` is the hit test.  The service
        batch scheduler scans a whole dispatch's point set through this
        before touching the kernel."""
        found = {}
        for key in keys:
            payload = self.get(key)
            if payload is not None:
                found[key] = payload
        return found

    def put(self, key: str, result: dict) -> None:
        """Store ``result`` (a JSON-encodable dict) under ``key``.

        In ``locked`` mode the write holds the per-key
        :class:`CacheLock`, so concurrent processes sharing the
        directory serialize on the entry (single writer)."""
        path = self._path(key)
        with obs.span("cache.put", cat="cache"):
            path.parent.mkdir(parents=True, exist_ok=True)
            guard = self.lock(key) if self.locked else contextlib.nullcontext()
            with guard:
                entry = {"version": self.version, "key": key, "result": result}
                fd, tmp = tempfile.mkstemp(
                    prefix=".tmp-", suffix=".json", dir=path.parent
                )
                try:
                    with os.fdopen(fd, "w") as handle:
                        json.dump(entry, handle)
                    os.replace(tmp, path)
                except OSError:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        self.stats.stores += 1
        obs.inc("cache.stores")

    def _quarantine(self, path: Path) -> None:
        """Move an invalid entry aside as ``<name>.corrupt`` instead of
        deleting it — evidence for operators, invisible to lookups (the
        original path is gone, so the key reads as a miss until
        rewritten).  A rename race (another reader quarantining the same
        file) is harmless; deletion is the fallback if rename fails."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
            self.stats.quarantined += 1
            obs.inc("cache.quarantined")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every entry (quarantined ones too); returns the number
        of live entries removed."""
        removed = 0
        if not self.directory.exists():
            return 0
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.directory.glob("*/*.json.corrupt"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))
