"""Plain-text table/series formatting for the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigError


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    if len(xs) != len(ys):
        raise ConfigError("x and y lengths differ")
    pairs = ", ".join(f"{x}={_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ConfigError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
