"""Why on-line preparation is mandatory: the §III-D storage argument.

The paper dismisses *static data preparation* (materializing every
augmented variant on storage ahead of time) with a worked example:
random-cropping a 256×256 image to 224×224 yields 32×32 distinct crops
of 0.15 MB each, so ImageNet's 14 M images would need about **2.2 PB** —
before even counting mirror, noise, or larger datasets.  This module
makes that calculator a first-class tool so deployments can price any
augmentation recipe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro import units


@dataclass(frozen=True)
class AugmentationSpace:
    """The combinatorial space one augmentation recipe spans.

    ``variants`` multiplies: each entry is (name, number of distinct
    outputs per input).  Continuous augmentations (noise) are effectively
    unbounded; model them with the number of distinct samples a training
    run would actually draw.
    """

    variants: Sequence = ()

    def multiplicity(self) -> float:
        total = 1.0
        for name, count in self.variants:
            if count < 1:
                raise ConfigError(f"variant {name!r} has count {count} < 1")
            total *= count
        return total


def crop_variants(
    source_height: int, source_width: int, crop_height: int, crop_width: int
) -> int:
    """Distinct crop positions of a crop inside a source image."""
    if crop_height > source_height or crop_width > source_width:
        raise ConfigError("crop larger than source")
    return (source_height - crop_height + 1) * (source_width - crop_width + 1)


@dataclass(frozen=True)
class StaticPrepEstimate:
    """Storage an offline-materialized augmented dataset would need."""

    num_items: int
    bytes_per_variant: float
    multiplicity: float

    @property
    def total_bytes(self) -> float:
        return self.num_items * self.bytes_per_variant * self.multiplicity

    @property
    def total_petabytes(self) -> float:
        return self.total_bytes / (units.TB * 1000)

    def drives_required(self, drive_capacity: float = 4 * units.TB) -> int:
        """NVMe drives needed just to hold the materialized data."""
        if drive_capacity <= 0:
            raise ConfigError("drive capacity must be positive")
        return math.ceil(self.total_bytes / drive_capacity)


def static_prep_storage(
    num_items: int,
    bytes_per_variant: float,
    space: AugmentationSpace,
) -> StaticPrepEstimate:
    """Price one recipe.  See :func:`paper_imagenet_example` for §III-D."""
    if num_items <= 0:
        raise ConfigError("num_items must be positive")
    if bytes_per_variant <= 0:
        raise ConfigError("bytes_per_variant must be positive")
    return StaticPrepEstimate(
        num_items=num_items,
        bytes_per_variant=bytes_per_variant,
        multiplicity=space.multiplicity(),
    )


def paper_imagenet_example() -> StaticPrepEstimate:
    """The paper's own §III-D numbers: 32×32 crops × 0.15 MB × 14 M
    images ≈ 2.2 PB (random cropping alone)."""
    # The paper quotes 32×32 positions and 0.15 MB per 224×224 RGB image
    # (it rounds the 33×33 exact stride count down to 32×32).
    space = AugmentationSpace(variants=[("random_crop", 32 * 32)])
    return static_prep_storage(
        num_items=14_000_000, bytes_per_variant=0.15 * units.MB, space=space
    )
