"""Figure 2a: performance (throughput/power) trends of neural network
hardware, 2012–2019.

The figure plots two normalized curves on a log axis: neural network
ASICs improving by more than four orders of magnitude over the decade,
and accelerator interconnects improving far more slowly.  The points
below are normalized efficiency estimates anchored on the accelerators
the paper cites ([2], [5], [6], [11], [21], [27], [29], [33], [47]) and
the PCIe/NVLink generations; what the reproduction relies on is the
*relationship* — compute efficiency running away from the general-purpose
interconnect — which is the root cause of the bottleneck shift.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigError

#: (year, normalized throughput/power, representative part).
_ASIC_TREND: List[Tuple[int, float, str]] = [
    (2012, 1.0, "GPU-class baseline (pre-accelerator)"),
    (2013, 2.5, "quality-programmable vector processors"),
    (2014, 12.0, "DianNao"),
    (2015, 60.0, "PuDianNao"),
    (2016, 350.0, "Eyeriss / PRIME (ReRAM)"),
    (2017, 2_000.0, "Envision / TPU"),
    (2018, 9_000.0, "Conv-RAM (in-SRAM compute)"),
    (2019, 25_000.0, "FPSA (reconfigurable ReRAM)"),
]

#: (year, normalized bandwidth/power, representative link).
_INTERCONNECT_TREND: List[Tuple[int, float, str]] = [
    (2012, 1.0, "PCIe Gen3 x16"),
    (2014, 1.6, "PCIe Gen3 multi-root"),
    (2016, 5.0, "NVLink 1.0"),
    (2017, 7.5, "NVLink 2.0"),
    (2018, 9.4, "NVSwitch fabric (DGX-2)"),
    (2019, 12.0, "NVSwitch, wider stacks"),
]


def asic_trend() -> List[Tuple[int, float, str]]:
    """The ASIC efficiency curve (year, normalized, part)."""
    return list(_ASIC_TREND)


def interconnect_trend() -> List[Tuple[int, float, str]]:
    """The interconnect efficiency curve (year, normalized, link)."""
    return list(_INTERCONNECT_TREND)


def trend_growth(trend: List[Tuple[int, float, str]]) -> float:
    """Total growth factor from the first to the last point."""
    if len(trend) < 2:
        raise ConfigError("a trend needs at least two points")
    first = trend[0][1]
    last = trend[-1][1]
    if first <= 0:
        raise ConfigError("trend values must be positive")
    return last / first
