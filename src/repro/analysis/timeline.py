"""Text Gantt rendering of DES traces.

Turns the :class:`~repro.core.des.TraceEvent` stream of a pipeline run
into a monospace timeline — one lane per station plus the iteration
barrier — so the overlap of next-batch preparation with compute+sync is
visible at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import SimulationError


def render_timeline(
    trace: Sequence,
    width: int = 100,
    t_start: float = 0.0,
    t_end: float = None,
) -> str:
    """Render a trace into a fixed-width lane chart.

    Busy cells print ``#``; within one lane overlapping events merge.
    ``t_start``/``t_end`` select the rendered window (defaults to the
    whole trace).
    """
    events = list(trace)
    if not events:
        raise SimulationError("empty trace")
    if width < 10:
        raise SimulationError("width must be >= 10")
    if t_end is None:
        t_end = max(e.end for e in events)
    if t_end <= t_start:
        raise SimulationError("t_end must exceed t_start")
    span = t_end - t_start

    # Accumulate fractional busy coverage per cell so sparse lanes read
    # as sparse (a cell prints '#' only when it is mostly busy).
    lanes: Dict[str, List[float]] = {}
    order: List[str] = []
    cell_span = span / width
    for event in events:
        key = f"{event.kind}:{event.name}"
        if key not in lanes:
            lanes[key] = [0.0] * width
            order.append(key)
        start = max(event.start, t_start)
        end = min(event.end, t_end)
        if end <= start:
            continue
        first = int((start - t_start) / cell_span)
        last = min(width - 1, int((end - t_start - 1e-12) / cell_span))
        for cell in range(first, last + 1):
            cell_lo = t_start + cell * cell_span
            cell_hi = cell_lo + cell_span
            overlap = min(end, cell_hi) - max(start, cell_lo)
            lanes[key][cell] += max(0.0, overlap) / cell_span

    label_width = max(len(k) for k in order)
    lines = [
        f"{'time':>{label_width}} |{_ruler(width, t_start, t_end)}|"
    ]
    for key in order:
        cells = "".join(
            "#" if coverage >= 0.5 else ("+" if coverage >= 0.05 else ".")
            for coverage in lanes[key]
        )
        lines.append(f"{key:>{label_width}} |{cells}|")
    return "\n".join(lines)


def _ruler(width: int, t_start: float, t_end: float) -> str:
    left = f"{t_start:.3g}s"
    right = f"{t_end:.3g}s"
    middle = "-" * max(0, width - len(left) - len(right))
    return (left + middle + right)[:width].ljust(width, "-")


def busy_fraction(trace: Iterable, lane_name: str) -> float:
    """Fraction of the trace's span the named lane is busy."""
    events = [e for e in trace]
    if not events:
        raise SimulationError("empty trace")
    span = max(e.end for e in events) - min(e.start for e in events)
    if span <= 0:
        raise SimulationError("degenerate trace span")
    busy = sum(e.duration for e in events if e.name == lane_name)
    return busy / span
