"""Reporting helpers: hardware trend data (Figure 2a) and table formatting."""

from repro.analysis.power import (
    PowerBudget,
    PowerRatings,
    prep_power_comparison,
    server_power,
)
from repro.analysis.static_prep import (
    AugmentationSpace,
    paper_imagenet_example,
    static_prep_storage,
)
from repro.analysis.tables import format_series, format_table, geometric_mean
from repro.analysis.tco import (
    ComponentPrices,
    host_amortization_ratio,
    scaleout_bom,
    trainbox_bom,
)
from repro.analysis.timeline import busy_fraction, render_timeline
from repro.analysis.trends import (
    asic_trend,
    interconnect_trend,
    trend_growth,
)

__all__ = [
    "AugmentationSpace",
    "ComponentPrices",
    "PowerBudget",
    "PowerRatings",
    "prep_power_comparison",
    "server_power",
    "asic_trend",
    "busy_fraction",
    "format_series",
    "format_table",
    "geometric_mean",
    "host_amortization_ratio",
    "interconnect_trend",
    "paper_imagenet_example",
    "render_timeline",
    "scaleout_bom",
    "static_prep_storage",
    "trainbox_bom",
    "trend_growth",
]
