"""System power and energy efficiency (the Figure 2a framing).

The paper's hardware trend is *throughput per watt*; the efficiency
argument for TrainBox is that it scales preparation with ~75 W FPGAs
instead of the thousands of CPU cores the baseline would need (Figure
10a: up to 4 833 cores ≈ 100+ server sockets just for preparation).
This module prices both: nameplate power per deployment, the samples/s/W
of a provisioned-to-target system, and the annual energy bill that
extends the TCO model into opex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.core.server import ServerModel

HOURS_PER_YEAR = 8_766.0


@dataclass(frozen=True)
class PowerRatings:
    """Nameplate draws in watts (datacenter-class parts)."""

    nn_accelerator: float = 350.0
    prep_fpga: float = 75.0
    cpu_socket: float = 205.0
    dram_per_tb: float = 60.0
    nvme_ssd: float = 12.0
    pcie_switch: float = 25.0
    ethernet_port: float = 7.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigError(f"rating {name} must be >= 0")


@dataclass(frozen=True)
class PowerBudget:
    """Itemized draw of one deployment, in watts."""

    label: str
    items: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.items.values())

    def efficiency(self, throughput: float) -> float:
        """Samples per second per watt."""
        if throughput <= 0:
            raise ConfigError("throughput must be positive")
        return throughput / self.total

    def annual_energy_cost(
        self, dollars_per_kwh: float = 0.12, pue: float = 1.4
    ) -> float:
        """Yearly energy opex including facility overhead (PUE)."""
        if dollars_per_kwh <= 0 or pue < 1.0:
            raise ConfigError("need positive $/kWh and PUE >= 1")
        return self.total / 1000.0 * HOURS_PER_YEAR * dollars_per_kwh * pue


def server_power(
    server: ServerModel,
    ratings: PowerRatings = PowerRatings(),
    cpu_sockets: int = 2,
    host_dram_tb: float = 1.5,
) -> PowerBudget:
    """Nameplate power of a built server (what is physically installed)."""
    n_switches = sum(
        1 for node in server.topology.nodes() if node.kind.value == "switch"
    )
    ethernet_ports = len(server.prep_ids) + len(server.pool_fpga_ids)
    items = {
        "nn_accelerators": len(server.acc_ids) * ratings.nn_accelerator,
        "prep_fpgas": (len(server.prep_ids) + len(server.pool_fpga_ids))
        * ratings.prep_fpga,
        "host_cpu": cpu_sockets * ratings.cpu_socket,
        "host_dram": host_dram_tb * ratings.dram_per_tb,
        "ssds": len(server.ssd_ids) * ratings.nvme_ssd,
        "pcie_switches": n_switches * ratings.pcie_switch,
        "ethernet": ethernet_ports * ratings.ethernet_port,
    }
    return PowerBudget(server.arch.name, items)


def provisioned_cpu_power(
    required_cores: float,
    ratings: PowerRatings = PowerRatings(),
    cores_per_socket: int = 24,
) -> float:
    """Watts of the CPU fleet a throughput target would force on the
    baseline (the Figure 10a cores turned into sockets)."""
    if required_cores < 0:
        raise ConfigError("required_cores must be >= 0")
    sockets = math.ceil(required_cores / cores_per_socket)
    return sockets * ratings.cpu_socket


def prep_power_comparison(
    required_cores: float,
    n_fpgas: int,
    ratings: PowerRatings = PowerRatings(),
) -> float:
    """How many times more power CPU-based preparation burns than the
    FPGA array delivering the same throughput."""
    if n_fpgas <= 0:
        raise ConfigError("n_fpgas must be positive")
    cpu_watts = provisioned_cpu_power(required_cores, ratings)
    fpga_watts = n_fpgas * ratings.prep_fpga
    if fpga_watts == 0:
        raise ConfigError("FPGA power rating is zero")
    return cpu_watts / fpga_watts
