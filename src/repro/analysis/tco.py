"""Total-cost-of-ownership comparison: scale-up vs scale-out (§III-A).

The paper's first argument for scale-up: "we can reduce total cost of
ownership for host resources; scale-up can amortize host resources while
scale-out requires dedicated resources for each node (e.g., one node
with 256 accelerators vs. 256 nodes with one accelerator per node)."

This module builds bills of materials for both organizations from a
component price table and compares capex and $/throughput.  Prices are
deliberately coarse (list-price class, in relative dollars); the claim
the tests pin is the *ratio*: per-accelerator host overhead shrinks
roughly with the node count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class ComponentPrices:
    """Relative unit prices (USD-class, order-of-magnitude)."""

    nn_accelerator: float = 8_000.0
    prep_fpga: float = 5_000.0
    host_cpu_and_board: float = 18_000.0   # 2-socket node: CPUs + board + PSU
    host_dram_per_tb: float = 4_000.0
    nvme_ssd: float = 1_200.0
    pcie_switch: float = 700.0
    ethernet_nic: float = 900.0
    tor_switch_port: float 	= 400.0
    nic_per_node: float = 900.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigError(f"price {name} must be >= 0")


@dataclass(frozen=True)
class BillOfMaterials:
    """Itemized capex of one deployment."""

    label: str
    items: Dict[str, float]  # item -> total dollars
    n_accelerators: int

    @property
    def total(self) -> float:
        return sum(self.items.values())

    @property
    def host_overhead(self) -> float:
        """Dollars spent on host-side resources (CPU, DRAM, NICs) —
        the part scale-up amortizes."""
        return sum(
            cost
            for item, cost in self.items.items()
            if item.startswith(("host_", "nic"))
        )

    @property
    def host_overhead_per_accelerator(self) -> float:
        return self.host_overhead / self.n_accelerators

    def dollars_per_throughput(self, throughput: float) -> float:
        if throughput <= 0:
            raise ConfigError("throughput must be positive")
        return self.total / throughput


def trainbox_bom(
    n_accelerators: int,
    prices: ComponentPrices = ComponentPrices(),
    accs_per_box: int = 8,
    fpgas_per_box: int = 2,
    ssds_per_box: int = 2,
    switches_per_box: int = 4,
    pool_fpgas: int = 0,
    host_dram_tb: float = 1.5,
) -> BillOfMaterials:
    """One TrainBox scale-up node: a single host plus clustered boxes."""
    if n_accelerators <= 0:
        raise ConfigError("n_accelerators must be positive")
    boxes = math.ceil(n_accelerators / accs_per_box)
    fpgas = boxes * fpgas_per_box + pool_fpgas
    items = {
        "nn_accelerators": n_accelerators * prices.nn_accelerator,
        "prep_fpgas": fpgas * prices.prep_fpga,
        "host_cpu": prices.host_cpu_and_board,
        "host_dram": host_dram_tb * prices.host_dram_per_tb,
        "ssds": boxes * ssds_per_box * prices.nvme_ssd,
        "pcie_switches": boxes * switches_per_box * prices.pcie_switch,
        "nics": fpgas * prices.ethernet_nic,
        "tor_ports": fpgas * prices.tor_switch_port,
    }
    return BillOfMaterials("trainbox", items, n_accelerators)


def scaleout_bom(
    n_accelerators: int,
    prices: ComponentPrices = ComponentPrices(),
    accs_per_node: int = 1,
    ssds_per_node: int = 2,
    host_dram_tb: float = 0.5,
) -> BillOfMaterials:
    """A scale-out cluster: every node ships its own host resources."""
    if n_accelerators <= 0 or accs_per_node <= 0:
        raise ConfigError("counts must be positive")
    nodes = math.ceil(n_accelerators / accs_per_node)
    items = {
        "nn_accelerators": n_accelerators * prices.nn_accelerator,
        "host_cpu": nodes * prices.host_cpu_and_board,
        "host_dram": nodes * host_dram_tb * prices.host_dram_per_tb,
        "ssds": nodes * ssds_per_node * prices.nvme_ssd,
        "pcie_switches": nodes * prices.pcie_switch,
        "nic_per_node": nodes * prices.nic_per_node,
        "tor_ports": nodes * prices.tor_switch_port,
    }
    return BillOfMaterials(f"scale-out({accs_per_node}/node)", items, n_accelerators)


def host_amortization_ratio(
    n_accelerators: int,
    prices: ComponentPrices = ComponentPrices(),
    accs_per_node: int = 1,
) -> float:
    """How many times more host dollars per accelerator the scale-out
    organization pays — the §III-A TCO argument, quantified."""
    up = trainbox_bom(n_accelerators, prices)
    out = scaleout_bom(n_accelerators, prices, accs_per_node=accs_per_node)
    return out.host_overhead_per_accelerator / up.host_overhead_per_accelerator
