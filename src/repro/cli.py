"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — one scenario: workload × architecture × scale.
* ``sweep``    — throughput vs accelerator count for one workload
  (``--jobs``/``--cache-dir`` fan out and cache via :mod:`repro.core.sweeps`).
* ``ladder``   — the Figure 19 optimization ladder for one workload.
* ``plan``     — the §V-A train-initializer plan (prep-pool sizing,
  data distribution).
* ``report``   — full session report (``--json`` for machines).
* ``bench-codec`` — codec throughput smoke test vs the committed baseline.
* ``bench-sweep`` — sweep-engine throughput smoke test vs the committed
  baseline.
* ``workloads`` — print Table I.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, PrepDevice
from repro.core.initializer import TrainInitializer
from repro.core.server import build_server
from repro.workloads.registry import TABLE_I, get_workload
from repro import units

_ARCHS = {
    "baseline": ArchitectureConfig.baseline,
    "acc": ArchitectureConfig.baseline_acc,
    "acc-gpu": lambda: ArchitectureConfig.baseline_acc(PrepDevice.GPU),
    "p2p": ArchitectureConfig.baseline_acc_p2p,
    "gen4": ArchitectureConfig.baseline_acc_p2p_gen4,
    "trainbox": ArchitectureConfig.trainbox,
    "trainbox-no-pool": lambda: ArchitectureConfig.trainbox(prep_pool=False),
}


def _arch(name: str) -> ArchitectureConfig:
    try:
        return _ARCHS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown architecture {name!r}; choose from {sorted(_ARCHS)}"
        )


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    result = simulate(
        TrainingScenario(
            workload, _arch(args.arch), args.accelerators, batch_size=args.batch
        )
    )
    print(f"workload      : {workload.name}")
    print(f"architecture  : {result.arch_name}")
    print(f"accelerators  : {result.n_accelerators}")
    print(f"batch/device  : {result.batch_size}")
    print(f"throughput    : {result.throughput:,.0f} samples/s")
    print(f"prep capacity : {result.prep_rate:,.0f} samples/s")
    print(f"accel demand  : {result.consume_rate:,.0f} samples/s")
    print(f"bottleneck    : {result.bottleneck}")
    return 0


def _sweep_cache(args: argparse.Namespace):
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.cache import ResultCache

    return ResultCache(args.cache_dir)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweeps import SCALE_LADDER, SweepSpec, run_sweep

    workload = get_workload(args.workload)
    arch = _arch(args.arch)
    scales = tuple(n for n in SCALE_LADDER if n <= args.accelerators)
    if not scales:
        scales = (args.accelerators,)
    spec = SweepSpec(workloads=(workload,), archs=(arch,), scales=scales)
    outcome = run_sweep(spec, n_jobs=args.jobs, cache=_sweep_cache(args))
    one = outcome.results[0].throughput
    rows = [
        [p.scale, f"{r.throughput:,.0f}", f"{r.throughput / one:.1f}x",
         r.bottleneck]
        for p, r in outcome
    ]
    print(format_table(["accels", "samples/s", "vs 1", "bottleneck"], rows))
    if args.cache_dir:
        print(
            f"cache: {outcome.cache_hits} hits, "
            f"{outcome.cache_misses} misses ({args.cache_dir})"
        )
    return 0


def _cmd_ladder(args: argparse.Namespace) -> int:
    from repro.core.sweeps import SweepSpec, run_sweep

    workload = get_workload(args.workload)
    spec = SweepSpec(
        workloads=(workload,),
        archs=tuple(ArchitectureConfig.figure19_ladder()),
        scales=(args.accelerators,),
    )
    outcome = run_sweep(spec, n_jobs=args.jobs, cache=_sweep_cache(args))
    base = next(
        r for p, r in outcome if p.arch.name == "baseline"
    )
    rows = [
        [
            p.arch.name,
            f"{r.throughput:,.0f}",
            f"{r.speedup_over(base):.1f}x",
            r.bottleneck,
        ]
        for p, r in outcome
    ]
    print(format_table(["architecture", "samples/s", "speedup", "bottleneck"], rows))
    if args.cache_dir:
        print(
            f"cache: {outcome.cache_hits} hits, "
            f"{outcome.cache_misses} misses ({args.cache_dir})"
        )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    server = build_server(ArchitectureConfig.trainbox(), args.accelerators)
    plan = TrainInitializer(server).plan(workload, num_items=args.items)
    print(f"required prep throughput : {plan.required_prep_rate:,.0f} samples/s")
    print(f"in-box FPGA capacity     : {plan.in_box_prep_rate:,.0f} samples/s")
    print(f"prep-pool FPGAs          : {plan.pool_fpgas_granted} "
          f"(+{100 * plan.extra_resource_fraction:.0f}%)")
    print(f"meets target             : {plan.meets_target}")
    print(f"boxes with data          : {len(plan.shards)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.session import TrainingSession

    session = TrainingSession(
        args.workload, args.accelerators, args.arch, batch_size=args.batch
    )
    if args.json:
        import json

        print(json.dumps(session.to_dict(), indent=2))
    else:
        print(session.report())
    return 0


def _cmd_bench_codec(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import perf

    baseline_path = Path(args.baseline)
    measurements = perf.codec_suite(
        size=args.size, repeats=args.repeats, batch=args.batch
    )
    baseline = perf.load_baseline(baseline_path)
    rows = []
    for m in measurements:
        ref = baseline.get(m.name)
        rows.append(
            [
                m.name,
                f"{m.best_seconds * 1000:.2f}",
                f"{m.samples_per_s:,.1f}",
                f"{ref:,.1f}" if ref else "-",
            ]
        )
    print(format_table(["benchmark", "best ms", "samples/s", "baseline"], rows))

    if args.update:
        perf.save_baseline(baseline_path, measurements)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline:
        print(f"no baseline at {baseline_path}; run with --update to record one")
        return 0
    failures = perf.regressions(measurements, baseline)
    for line in failures:
        print(f"REGRESSION  {line}", file=sys.stderr)
    if failures:
        return 1
    print(f"all codec throughputs within {100 * perf.tolerance():.0f}% of baseline")
    return 0


def _cmd_bench_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import perf

    baseline_path = Path(args.baseline)
    measurements = perf.sweep_suite(repeats=args.repeats, n_jobs=args.jobs)
    baseline = perf.load_baseline(baseline_path)
    rows = []
    for m in measurements:
        ref = baseline.get(m.name)
        rows.append(
            [
                m.name,
                f"{m.best_seconds * 1000:.2f}",
                f"{m.samples_per_s:,.1f}",
                f"{ref:,.1f}" if ref else "-",
            ]
        )
    print(format_table(["benchmark", "best ms", "points/s", "baseline"], rows))

    if args.update:
        perf.save_baseline(baseline_path, measurements)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline:
        print(f"no baseline at {baseline_path}; run with --update to record one")
        return 0
    failures = perf.regressions(measurements, baseline)
    for line in failures:
        print(f"REGRESSION  {line}", file=sys.stderr)
    if failures:
        return 1
    print(f"all sweep throughputs within {100 * perf.tolerance():.0f}% of baseline")
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [
            w.nn_type.value,
            w.name,
            w.task,
            w.batch_size,
            f"{w.model_bytes / units.MB:.1f}",
            f"{w.sample_rate:,}",
        ]
        for w in TABLE_I.values()
    ]
    print(
        format_table(
            ["type", "name", "task", "batch", "model MB", "sample/s"], rows
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TrainBox reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", help="Table I workload name (e.g. Resnet-50)")
        p.add_argument(
            "-n", "--accelerators", type=int, default=256,
            help="NN accelerator count (default 256)",
        )

    p = sub.add_parser("simulate", help="simulate one scenario")
    common(p)
    p.add_argument("-a", "--arch", default="trainbox", help=f"one of {sorted(_ARCHS)}")
    p.add_argument("-b", "--batch", type=int, default=None, help="per-device batch")
    p.set_defaults(func=_cmd_simulate)

    def sweep_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "-j", "--jobs", type=int, default=1,
            help="worker processes for uncached points (default 1)",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="persistent result-cache directory (off by default)",
        )

    p = sub.add_parser("sweep", help="throughput vs accelerator count")
    common(p)
    p.add_argument("-a", "--arch", default="baseline")
    sweep_opts(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("ladder", help="the Figure 19 optimization ladder")
    common(p)
    sweep_opts(p)
    p.set_defaults(func=_cmd_ladder)

    p = sub.add_parser("plan", help="train-initializer plan (prep-pool sizing)")
    common(p)
    p.add_argument("--items", type=int, default=1_000_000, help="dataset items")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("report", help="full session report (use --json for machines)")
    common(p)
    p.add_argument(
        "-a", "--arch", default="trainbox",
        help="baseline | trainbox | trainbox-no-pool",
    )
    p.add_argument("-b", "--batch", type=int, default=None)
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "bench-codec",
        help="codec throughput smoke test vs the committed baseline",
    )
    p.add_argument(
        "--baseline",
        default="benchmarks/baselines/codec_throughput.json",
        help="baseline JSON path",
    )
    p.add_argument("--size", type=int, default=256, help="square image size")
    p.add_argument("--repeats", type=int, default=10, help="best-of-N repeats")
    p.add_argument("--batch", type=int, default=8, help="encode_batch size")
    p.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    p.set_defaults(func=_cmd_bench_codec)

    p = sub.add_parser(
        "bench-sweep",
        help="sweep-engine throughput smoke test vs the committed baseline",
    )
    p.add_argument(
        "--baseline",
        default="benchmarks/baselines/sweep_throughput.json",
        help="baseline JSON path",
    )
    p.add_argument("-j", "--jobs", type=int, default=4, help="pool size offered")
    p.add_argument("--repeats", type=int, default=3, help="best-of-N repeats")
    p.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    p.set_defaults(func=_cmd_bench_sweep)

    p = sub.add_parser("workloads", help="print Table I")
    p.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
