"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — one scenario: workload × architecture × scale.
* ``sweep``    — throughput vs accelerator count for one workload
  (``--jobs``/``--cache-dir`` fan out and cache via :mod:`repro.core.sweeps`).
* ``ladder``   — the Figure 19 optimization ladder for one workload.
* ``plan``     — the §V-A train-initializer plan (prep-pool sizing,
  data distribution).
* ``report``   — full session report (``--json`` for machines).
* ``trace``    — run one scenario with tracing on and export a Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` / Perfetto).
* ``profile``  — run one scenario instrumented and print the top spans
  and counters.
* ``bench-codec`` — codec throughput smoke test vs the committed baseline.
* ``bench-sweep`` — sweep-engine throughput smoke test vs the committed
  baseline; ``--cold`` times the vectorized kernel against the scalar
  engine on a 576-point uncached grid (bit-identity asserted first,
  ≥5x floor enforced).
* ``bench-prep`` — data-preparation throughput smoke test vs the
  committed baseline, plus the batched-vs-reference speedup gate.
* ``chaos``    — the resilience drill: inject every prep-engine failure
  mode deterministically and verify bit-identical recovery; with
  ``--fail DEVICE:T0[:T1]`` it prices a time-varying fault schedule as
  a piecewise degraded-throughput timeline instead.
* ``serve``    — run the simulation service (:mod:`repro.service`):
  an asyncio TCP server with request coalescing, admission control and
  per-tenant quotas in front of the facade.
* ``client``   — talk to a running service: ``client simulate`` prices
  a scenario remotely, ``client stats`` / ``client ping`` are the admin
  ops.
* ``bench-service`` — the service load test: concurrent clients replay
  a duplicate-heavy trace, every response is checked bit-identical to a
  direct facade call, and p50/p99 latency is gated against the
  committed baseline.
* ``workloads`` — print Table I.

``simulate``/``sweep``/``ladder`` share one flag vocabulary (scenario,
engine, ``--jobs``/``--cache-dir``, ``--trace``/``--metrics``) built
from common argparse parents, and ``simulate``/``sweep`` construct the
versioned :mod:`repro.api` request objects explicitly — the CLI speaks
the same wire schema the service does.  All scenario evaluation goes
through the :mod:`repro.api` facade.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api, obs, units
from repro.analysis.tables import format_table
from repro.core.config import ArchitectureConfig
from repro.core.initializer import TrainInitializer
from repro.core.server import build_server
from repro.errors import ConfigError
from repro.workloads.registry import TABLE_I, get_workload

#: Kept as the canonical alias map lives in :mod:`repro.api` now.
_ARCHS = api.ARCH_BUILDERS


def _arch(name: str) -> ArchitectureConfig:
    try:
        return api.resolve_arch(name)
    except ConfigError:
        raise SystemExit(
            f"unknown architecture {name!r}; choose from {sorted(_ARCHS)}"
        )


def _instruments(args: argparse.Namespace):
    """(tracer, registry) per the command's --trace/--metrics flags."""
    tracer = obs.Tracer() if getattr(args, "trace", None) else None
    registry = obs.MetricsRegistry() if getattr(args, "metrics", None) else None
    return tracer, registry


def _export_instruments(args, tracer, registry) -> None:
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print(f"trace written: {args.trace} ({len(tracer.spans)} spans)")
    if registry is not None:
        registry.write_manifest(args.metrics)
        print(f"metrics manifest written: {args.metrics}")


def _request(args: argparse.Namespace) -> "api.SimulationRequest":
    """The versioned request object a scenario command denotes."""
    return api.SimulationRequest(
        args.workload,
        _arch(args.arch),
        args.accelerators,
        engine=args.engine,
        batch_size=getattr(args, "batch", None),
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    tracer, registry = _instruments(args)
    result = api.simulate(
        _request(args),
        trace=tracer,
        metrics=registry,
        cache=args.cache_dir,
    )
    print(f"workload      : {result.workload_name}")
    print(f"architecture  : {result.arch_name}")
    print(f"engine        : {args.engine}")
    print(f"accelerators  : {result.n_accelerators}")
    print(f"batch/device  : {result.batch_size}")
    print(f"throughput    : {result.throughput:,.0f} samples/s")
    print(f"prep capacity : {result.prep_rate:,.0f} samples/s")
    print(f"accel demand  : {result.consume_rate:,.0f} samples/s")
    print(f"bottleneck    : {result.bottleneck}")
    _export_instruments(args, tracer, registry)
    return 0


def _sweep_cache(args: argparse.Namespace):
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.cache import ResultCache

    return ResultCache(args.cache_dir)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweeps import SCALE_LADDER

    scales = tuple(n for n in SCALE_LADDER if n <= args.accelerators)
    if not scales:
        scales = (args.accelerators,)
    try:
        request = api.SweepRequest(
            workloads=(args.workload,),
            archs=(args.arch,),
            scales=scales,
            engine=args.engine,
        )
    except ConfigError as exc:
        raise SystemExit(str(exc)) from None
    tracer, registry = _instruments(args)
    with obs.session(tracer=tracer):
        outcome = api.sweep(
            request, n_jobs=args.jobs, cache=_sweep_cache(args),
            metrics=registry,
        )
    one = outcome.results[0].throughput
    rows = [
        [p.scale, f"{r.throughput:,.0f}", f"{r.throughput / one:.1f}x",
         r.bottleneck]
        for p, r in outcome
    ]
    print(format_table(["accels", "samples/s", "vs 1", "bottleneck"], rows))
    if args.cache_dir:
        print(
            f"cache: {outcome.cache_hits} hits, "
            f"{outcome.cache_misses} misses ({args.cache_dir})"
        )
    if getattr(args, "explain_batch", False):
        print(
            f"dispatch: {outcome.batch_points} batch, "
            f"{outcome.batch_fallbacks} scalar fallback, "
            f"{outcome.cache_hits} cache"
        )
        for (p, _), how in zip(outcome, outcome.dispatch):
            print(f"  {p.workload.name}/{p.arch.name}/{p.scale}: {how}")
    _export_instruments(args, tracer, registry)
    return 0


def _cmd_ladder(args: argparse.Namespace) -> int:
    from repro.core.sweeps import SweepSpec

    workload = get_workload(args.workload)
    # The figure-19 ladder configs carry no ARCH_BUILDERS aliases, so
    # this command keeps speaking SweepSpec rather than a wire request.
    spec = SweepSpec(
        workloads=(workload,),
        archs=tuple(ArchitectureConfig.figure19_ladder()),
        scales=(args.accelerators,),
        engine=args.engine,
    )
    tracer, registry = _instruments(args)
    with obs.session(tracer=tracer):
        outcome = api.sweep(
            spec, n_jobs=args.jobs, cache=_sweep_cache(args),
            metrics=registry,
        )
    base = next(
        r for p, r in outcome if p.arch.name == "baseline"
    )
    rows = [
        [
            p.arch.name,
            f"{r.throughput:,.0f}",
            f"{r.speedup_over(base):.1f}x",
            r.bottleneck,
        ]
        for p, r in outcome
    ]
    print(format_table(["architecture", "samples/s", "speedup", "bottleneck"], rows))
    if args.cache_dir:
        print(
            f"cache: {outcome.cache_hits} hits, "
            f"{outcome.cache_misses} misses ({args.cache_dir})"
        )
    _export_instruments(args, tracer, registry)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    result = api.simulate(
        args.workload,
        _arch(args.arch),
        args.accelerators,
        engine=args.engine,
        batch_size=args.batch,
        trace=tracer,
        metrics=registry,
    )
    path = tracer.write_chrome(args.out)
    traced = api.trace_iteration_time(tracer)
    reported = result.iteration_time
    delta = abs(traced - reported) / reported if reported else 0.0
    print(f"trace written : {path} ({len(tracer.spans)} spans)")
    print(f"engine        : {args.engine}")
    print(f"throughput    : {result.throughput:,.0f} samples/s")
    print(f"iteration time: {reported * 1e3:.3f} ms (reported)")
    print(f"trace implies : {traced * 1e3:.3f} ms ({100 * delta:.3f}% off)")
    if delta > 0.01:
        print("RECONCILIATION FAILURE: trace vs result differ by >1%",
              file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    result = api.simulate(
        args.workload,
        _arch(args.arch),
        args.accelerators,
        engine=args.engine,
        batch_size=args.batch,
        trace=tracer,
        metrics=registry,
    )
    print(f"{result.workload_name} on {result.arch_name} "
          f"x{result.n_accelerators} [{args.engine}]: "
          f"{result.throughput:,.0f} samples/s")
    print()
    rows = [
        [
            s.name,
            s.track,
            s.count,
            f"{s.total * 1e3:.3f}",
            f"{s.mean * 1e3:.3f}",
            f"{s.max_duration * 1e3:.3f}",
        ]
        for s in tracer.summarize(top=args.top)
    ]
    print(format_table(
        ["span", "track", "count", "total ms", "mean ms", "max ms"], rows
    ))
    manifest = registry.to_manifest()
    counter_rows = [[k, v] for k, v in manifest["counters"].items()]
    if counter_rows:
        print()
        print(format_table(["counter", "value"], counter_rows))
    histo_rows = [
        [k, h["count"], f"{h['total']:.4g}", h["min"], h["max"]]
        for k, h in manifest["histograms"].items()
    ]
    if histo_rows:
        print()
        print(format_table(["histogram", "n", "total", "min", "max"], histo_rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.workload == "describe":
        return _cmd_plan_describe(args)
    workload = get_workload(args.workload)
    server = build_server(ArchitectureConfig.trainbox(), args.accelerators)
    plan = TrainInitializer(server).plan(workload, num_items=args.items)
    print(f"required prep throughput : {plan.required_prep_rate:,.0f} samples/s")
    print(f"in-box FPGA capacity     : {plan.in_box_prep_rate:,.0f} samples/s")
    print(f"prep-pool FPGAs          : {plan.pool_fpgas_granted} "
          f"(+{100 * plan.extra_resource_fraction:.0f}%)")
    print(f"meets target             : {plan.meets_target}")
    print(f"boxes with data          : {len(plan.shards)}")
    return 0


def _cmd_plan_describe(args: argparse.Namespace) -> int:
    """``repro plan describe <pipeline>`` — compile a prep pipeline for a
    representative batch and print the compiled-plan report (stages,
    fusions, hoisted invariants, arena layout)."""
    import numpy as np

    from repro import perf
    from repro.dataprep.ops_audio import audio_pipeline
    from repro.dataprep.ops_image import image_pipeline
    from repro.dataprep.plan import compile_plan, geometry_for_batch

    name = args.pipeline
    size, batch = args.size, args.batch
    crop = max(1, size - 32)
    if name == "image":
        pipe = image_pipeline(out_height=crop, out_width=crop)
        payloads = perf._bench_jpeg_blobs(size, batch)
    elif name == "image-png":
        from repro.dataprep.png import codec as png

        pipe = image_pipeline(
            out_height=crop, out_width=crop, source_format="png"
        )
        payloads = [
            png.encode(perf.bench_image(size, size, seed=300 + i))
            for i in range(batch)
        ]
    elif name == "audio":
        pipe = audio_pipeline()
        payloads = (
            np.clip(
                np.random.default_rng(5).normal(0, 0.2, (batch, 16_000)),
                -1,
                1,
            )
            * 32767
        ).astype(np.int16)
    else:
        raise SystemExit(
            f"unknown pipeline {name!r}; choose from image, image-png, audio"
        )
    plan = compile_plan(pipe, geometry_for_batch(pipe, payloads))
    print(plan.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.session import TrainingSession

    session = TrainingSession(
        args.workload, args.accelerators, args.arch, batch_size=args.batch
    )
    if args.json:
        import json

        print(json.dumps(session.to_dict(), indent=2))
    else:
        print(session.report())
    return 0


def _cmd_bench_codec(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import perf

    baseline_path = Path(args.baseline)
    measurements = perf.codec_suite(
        size=args.size, repeats=args.repeats, batch=args.batch
    )
    baseline = perf.load_baseline(baseline_path)
    rows = []
    for m in measurements:
        ref = baseline.get(m.name)
        rows.append(
            [
                m.name,
                f"{m.best_seconds * 1000:.2f}",
                f"{m.samples_per_s:,.1f}",
                f"{ref:,.1f}" if ref else "-",
            ]
        )
    print(format_table(["benchmark", "best ms", "samples/s", "baseline"], rows))

    if args.update:
        perf.save_baseline(baseline_path, measurements)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline:
        print(f"no baseline at {baseline_path}; run with --update to record one")
        return 0
    failures = perf.regressions(measurements, baseline)
    for line in failures:
        print(f"REGRESSION  {line}", file=sys.stderr)
    if failures:
        return 1
    print(f"all codec throughputs within {100 * perf.tolerance():.0f}% of baseline")
    return 0


def _cmd_bench_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import perf

    baseline_path = Path(
        args.baseline
        or (
            "benchmarks/baselines/sweep_cold.json"
            if args.cold
            else "benchmarks/baselines/sweep_throughput.json"
        )
    )
    if args.cold:
        # Identity over the full cold grid is asserted inside the suite
        # before any timing — a ConfigError here means the vectorized
        # kernel disagrees with the scalar engine, not a slow host.
        measurements, speedup = perf.sweep_cold_suite(repeats=args.repeats)
    else:
        measurements = perf.sweep_suite(repeats=args.repeats, n_jobs=args.jobs)
    baseline = perf.load_baseline(baseline_path)
    rows = []
    for m in measurements:
        ref = baseline.get(m.name)
        rows.append(
            [
                m.name,
                f"{m.best_seconds * 1000:.2f}",
                f"{m.samples_per_s:,.1f}",
                f"{ref:,.1f}" if ref else "-",
            ]
        )
    print(format_table(["benchmark", "best ms", "points/s", "baseline"], rows))

    if args.cold:
        n_points = measurements[0].samples
        print(
            f"cold grid: {n_points} points bit-identical to the scalar "
            f"engine; vectorized speedup {speedup:.2f}x "
            f"(floor {perf.MIN_BATCH_SPEEDUP:.0f}x)"
        )
        if speedup < perf.MIN_BATCH_SPEEDUP:
            print(
                f"FLOOR  cold batch speedup {speedup:.2f}x is below the "
                f"required {perf.MIN_BATCH_SPEEDUP:.0f}x",
                file=sys.stderr,
            )
            return 1

    if args.update:
        perf.save_baseline(baseline_path, measurements)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline:
        print(f"no baseline at {baseline_path}; run with --update to record one")
        return 0
    failures = perf.regressions(measurements, baseline)
    for line in failures:
        print(f"REGRESSION  {line}", file=sys.stderr)
    if failures:
        return 1
    print(f"all sweep throughputs within {100 * perf.tolerance():.0f}% of baseline")
    return 0


def _plan_steady_state_bytes() -> int:
    """Retained bytes across repeated warm plan executes (asserts ~0).

    Runs on a small geometry — the zero-allocation property is about the
    arena discipline, not the batch size, so the check stays fast.
    """
    import numpy as np

    from repro import perf
    from repro.dataprep.ops_image import image_pipeline
    from repro.dataprep.pipeline import spawn_rngs
    from repro.dataprep.plan import compile_plan, geometry_for_batch

    pipe = image_pipeline(out_height=48, out_width=48)
    blobs = perf._bench_jpeg_blobs(64, 16)
    plan = compile_plan(pipe, geometry_for_batch(pipe, blobs))

    def step():
        plan.execute(blobs, spawn_rngs(np.random.default_rng(0), 16))

    return perf.assert_zero_alloc(step)


def _cmd_bench_prep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import perf

    baseline_path = Path(args.baseline)
    # The audio plan gate must run before anything churns large
    # allocations: its fresh-process floor models a dedicated audio
    # prep worker (see perf.audio_plan_speedup).
    audio_speedup = None
    if args.plan:
        audio_speedup = perf.audio_plan_speedup(repeats=max(args.repeats, 15))
        print(
            f"compiled-plan audio speedup vs per-op vectorized path: "
            f"{audio_speedup:.2f}x (32x16000 PCM batch, fresh process, "
            f"bit-identical)"
        )
    measurements = perf.prep_suite(
        size=args.size, batch=args.batch, repeats=args.repeats
    )
    baseline = perf.load_baseline(baseline_path)
    rows = []
    for m in measurements:
        ref = baseline.get(m.name)
        rows.append(
            [
                m.name,
                f"{m.best_seconds * 1000:.2f}",
                f"{m.samples_per_s:,.1f}",
                f"{ref:,.1f}" if ref else "-",
            ]
        )
    print(format_table(["benchmark", "best ms", "samples/s", "baseline"], rows))

    # The speedup gate is a fixed-floor ratio, not a tolerance check, so
    # give best-of a couple of extra repeats to ride out host noise.
    speedup = perf.prep_reference_speedup(
        size=args.speedup_size,
        batch=args.speedup_batch,
        repeats=max(args.repeats, 5),
    )
    print(
        f"batched prep speedup vs per-sample reference: {speedup:.2f}x "
        f"({args.speedup_batch}x{args.speedup_size}x{args.speedup_size} "
        f"JPEG batch, bit-identical outputs)"
    )

    plan_speedup = None
    if args.plan:
        plan_speedup = perf.prep_plan_speedup(
            size=args.speedup_size,
            batch=args.speedup_batch,
            repeats=max(args.repeats, 8),
        )
        print(
            f"compiled-plan speedup vs per-op vectorized path: "
            f"{plan_speedup:.2f}x "
            f"({args.speedup_batch}x{args.speedup_size}x{args.speedup_size} "
            f"JPEG batch, bit-identical, decode-bound — see "
            f"docs/performance.md)"
        )
        growth = _plan_steady_state_bytes()
        print(
            f"steady-state plan allocation check: {growth} bytes retained "
            f"across repeated execute() (zero-allocation)"
        )

    if args.update:
        perf.save_baseline(baseline_path, measurements)
        print(f"baseline updated: {baseline_path}")
        return 0
    status = 0
    if speedup < args.min_speedup:
        print(
            f"SPEEDUP GATE  batched path is {speedup:.2f}x the reference, "
            f"required >= {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        status = 1
    if plan_speedup is not None and plan_speedup < args.min_plan_speedup:
        print(
            f"PLAN GATE  compiled plan is {plan_speedup:.2f}x the per-op "
            f"path, required >= {args.min_plan_speedup:.2f}x",
            file=sys.stderr,
        )
        status = 1
    if audio_speedup is not None and audio_speedup < args.min_audio_plan_speedup:
        print(
            f"PLAN GATE  compiled audio plan is {audio_speedup:.2f}x the "
            f"per-op path, required >= {args.min_audio_plan_speedup:.2f}x",
            file=sys.stderr,
        )
        status = 1
    if not baseline:
        print(f"no baseline at {baseline_path}; run with --update to record one")
        return status
    failures = perf.regressions(measurements, baseline)
    for line in failures:
        print(f"REGRESSION  {line}", file=sys.stderr)
    if failures:
        return 1
    if status == 0:
        print(
            f"all prep throughputs within {100 * perf.tolerance():.0f}% "
            f"of baseline"
        )
    return status


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.fail:
        return _chaos_schedule(args)
    return _chaos_drill(args)


def _chaos_drill(args: argparse.Namespace) -> int:
    from repro.dataprep.drill import run_drill

    results = run_drill(
        num_samples=args.samples,
        batch_size=args.batch,
        num_workers=args.workers,
        seed=args.seed,
        shard_timeout_s=args.timeout,
    )
    rows = []
    for r in results:
        d = r.report.as_dict()
        rows.append(
            [
                r.name,
                "ok" if r.ok else "FAIL",
                f"{r.seconds:.2f}",
                d["retries"],
                d["worker_crashes"],
                d["deadline_expiries"],
                d["respawns"],
                d["shards_quarantined"],
                d["samples_quarantined"],
            ]
        )
    print(format_table(
        ["scenario", "bits", "sec", "retry", "crash", "deadline",
         "respawn", "shard-q", "sample-q"],
        rows,
    ))
    failures = [r for r in results if not r.ok]
    for r in failures:
        detail = r.error or "delivered batches differ from the reference run"
        print(f"CHAOS FAILURE  {r.name}: {detail}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"all {len(results)} chaos scenarios bit-identical to the "
        f"fault-free reference ({args.workers} workers, seed {args.seed})"
    )
    return 0


def _chaos_schedule(args: argparse.Namespace) -> int:
    from repro.core.faults import FaultEvent, FaultSchedule

    events = []
    for spec in args.fail:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"bad --fail spec {spec!r}; expected DEVICE:FAIL[:RECOVER]"
            )
        try:
            fail_t = float(parts[1])
            recover_t = float(parts[2]) if len(parts) == 3 else float("inf")
        except ValueError:
            raise SystemExit(f"bad --fail times in {spec!r}") from None
        events.append(FaultEvent(parts[0], fail_t, recover_t))
    timeline = api.price_fault_schedule(
        args.workload,
        _arch(args.arch),
        args.accelerators,
        FaultSchedule(tuple(events)),
        args.horizon,
        engine=args.engine,
    )
    rows = [
        [
            f"{s.start:g}",
            f"{s.end:g}",
            ",".join(s.failed) or "-",
            f"{s.throughput:,.0f}",
            s.bottleneck,
        ]
        for s in timeline.segments
    ]
    print(format_table(
        ["start", "end", "failed", "samples/s", "bottleneck"], rows
    ))
    print(
        f"mean {timeline.mean_throughput:,.0f} samples/s over "
        f"{timeline.horizon:g}s "
        f"(min {timeline.min_throughput:,.0f}, "
        f"max {timeline.max_throughput:,.0f}) [{args.engine}]"
    )
    return 0


def _service_config(args: argparse.Namespace):
    import math

    from repro.service import ServiceConfig

    return ServiceConfig(
        max_workers=args.workers,
        max_pending=args.max_pending,
        memo_entries=args.memo,
        quota_rate=math.inf if args.quota_rate is None else args.quota_rate,
        quota_burst=args.quota_burst,
        max_tenants=args.max_tenants,
        cache_dir=args.cache_dir,
        shared_dir=args.shared_dir,
        batch_enabled=not args.no_batch,
        batch_window_ms=args.batch_window_ms,
        max_batch_points=args.max_batch_points,
        drain_timeout=args.drain_timeout,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    try:
        serve(
            _service_config(args),
            host=args.host,
            port=args.port,
            drain_timeout=args.drain_timeout,
        )
    except ConfigError as exc:
        raise SystemExit(str(exc)) from None
    return 0


def _pipeline_requests(path: str):
    """Parse a JSONL file of request bodies into request objects."""
    import json

    requests = []
    try:
        handle = open(path)
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not JSON: {exc}")
            try:
                requests.append(api.request_from_dict(data))
            except ConfigError as exc:
                raise SystemExit(f"{path}:{lineno}: {exc}")
    if not requests:
        raise SystemExit(f"{path}: no requests")
    return requests


def _cmd_client(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.service import ServiceClient

    try:
        with ServiceClient(
            args.host, args.port, tenant=args.tenant
        ) as client:
            if args.requests_file is not None:
                # Pipeline mode: write every frame, then collect the
                # out-of-order responses — the server's batch window
                # stitches the distinct analytical points together.
                requests = _pipeline_requests(args.requests_file)
                start = time.perf_counter()
                responses = client.request_many(requests)
                elapsed = time.perf_counter() - start
                if args.json:
                    for response in responses:
                        print(json.dumps(response, sort_keys=True))
                failed = 0
                served: dict = {}
                for response in responses:
                    if response.get("status") != "ok":
                        failed += 1
                        error = response.get("error") or {}
                        print(
                            f"{response.get('id')}: "
                            f"{response.get('status')}: "
                            f"{error.get('code')}: {error.get('message')}",
                            file=sys.stderr,
                        )
                    else:
                        tier = response["meta"].get("served_by", "?")
                        served[tier] = served.get(tier, 0) + 1
                tiers = ", ".join(
                    f"{tier}: {count}" for tier, count in sorted(served.items())
                )
                print(
                    f"{len(responses)} requests in {elapsed * 1000:.1f} ms "
                    f"({failed} failed; {tiers})"
                )
                return 1 if failed else 0
            if args.action == "ping":
                response = client.ping()
                print(json.dumps(response, indent=2, sort_keys=True))
                return 0 if response.get("status") == "ok" else 1
            if args.action == "stats":
                stats = client.stats()
                print(json.dumps(stats, indent=2, sort_keys=True))
                return 0
            # action == "simulate": price one scenario remotely.
            if args.workload is None:
                raise SystemExit("client simulate needs a workload name")
            request = _request(args)
            response = client.call(request, profile=args.profile)
            if response.get("status") != "ok":
                error = response.get("error") or {}
                print(
                    f"{response.get('status')}: {error.get('code')}: "
                    f"{error.get('message')}",
                    file=sys.stderr,
                )
                return 1
            if args.json:
                print(json.dumps(response, indent=2, sort_keys=True))
                return 0
            result = response["payload"]["result"]
            meta = response.get("meta", {})
            print(f"workload      : {result['workload_name']}")
            print(f"architecture  : {result['arch_name']}")
            print(f"engine        : {request.engine}")
            print(f"accelerators  : {result['n_accelerators']}")
            print(f"throughput    : {result['throughput']:,.0f} samples/s")
            print(f"bottleneck    : {result['bottleneck']}")
            print(f"served by     : {meta.get('served_by')}")
            if args.profile and "spans" in meta:
                rows = [
                    [name, count, f"{total_ms:.3f}"]
                    for name, count, total_ms in meta["spans"]
                ]
                print(format_table(["span", "count", "total ms"], rows))
            return 0
    except ConfigError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_bench_service(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import perf
    from repro.service import ServiceConfig, run_load_test
    from repro.service.bench import BATCH_BASELINE_PATH, run_batch_comparison

    if args.chaos:
        # The chaos drill is a correctness gate, not a latency gate: no
        # baseline machinery, just seeded fault injection with hard
        # invariants (bit-identity, accounting balance, clean drain).
        from repro.service.bench import run_chaos_drill

        seeds = args.chaos_seed if args.chaos_seed else [5, 11]
        try:
            for seed in seeds:
                report = run_chaos_drill(seed=seed)
                print(report.summary())
        except ConfigError as exc:
            print(f"SERVICE GATE  {exc}", file=sys.stderr)
            return 1
        print(
            "chaos drill passed: non-faulted responses bit-identical, "
            "accounting balanced, server drained clean"
        )
        return 0

    config = ServiceConfig(
        max_workers=args.workers,
        max_pending=max(64, args.clients * 64),
    )
    if args.distinct:
        # The cross-request batching gate: all-distinct trace, batched
        # vs unbatched phases, hard p99 speedup floor.
        baseline_path = (
            Path(args.baseline)
            if args.baseline is not None
            else BATCH_BASELINE_PATH
        )
        try:
            report = run_batch_comparison(
                n_clients=args.clients,
                config=config,
                speedup_floor=args.min_speedup,
            )
        except ConfigError as exc:
            print(f"SERVICE GATE  {exc}", file=sys.stderr)
            return 1
    else:
        baseline_path = (
            Path(args.baseline)
            if args.baseline is not None
            else Path("benchmarks/baselines/service_latency.json")
        )
        try:
            report = run_load_test(
                n_clients=args.clients, dup_factor=args.dup, config=config
            )
        except ConfigError as exc:
            print(f"SERVICE GATE  {exc}", file=sys.stderr)
            return 1
    print(report.summary())

    measurements = report.measurements()
    baseline = perf.load_baseline(baseline_path)
    rows = []
    for m in measurements:
        ref = baseline.get(m.name)
        rows.append(
            [
                m.name,
                f"{m.best_seconds * 1000:.2f}",
                f"{m.samples_per_s:,.1f}",
                f"{ref:,.1f}" if ref else "-",
            ]
        )
    print(format_table(["benchmark", "best ms", "rate/s", "baseline"], rows))

    if args.update:
        perf.save_baseline(baseline_path, measurements)
        print(f"baseline updated: {baseline_path}")
        return 0
    if not baseline:
        print(f"no baseline at {baseline_path}; run with --update to record one")
        return 0
    failures = perf.regressions(measurements, baseline)
    for line in failures:
        print(f"REGRESSION  {line}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"service latencies within {100 * perf.tolerance():.0f}% of "
        f"baseline; every response bit-identical to the direct facade call"
    )
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [
            w.nn_type.value,
            w.name,
            w.task,
            w.batch_size,
            f"{w.model_bytes / units.MB:.1f}",
            f"{w.sample_rate:,}",
        ]
        for w in TABLE_I.values()
    ]
    print(
        format_table(
            ["type", "name", "task", "batch", "model MB", "sample/s"], rows
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TrainBox reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag vocabulary: one argparse parent per group, composed
    # per command, so simulate/sweep/ladder (and trace/profile) can
    # never drift apart in spelling, defaults or help text.
    scenario_p = argparse.ArgumentParser(add_help=False)
    scenario_p.add_argument(
        "workload", help="Table I workload name (e.g. Resnet-50)"
    )
    scenario_p.add_argument(
        "-n", "--accelerators", type=int, default=256,
        help="NN accelerator count (default 256)",
    )

    # argparse parents share Action objects, so a per-command default
    # needs a per-default parent (set_defaults would mutate the shared
    # Action and leak the override into every sibling command).
    def arch_parent(default: str) -> argparse.ArgumentParser:
        ap = argparse.ArgumentParser(add_help=False)
        ap.add_argument(
            "-a", "--arch", default=default,
            help=f"one of {sorted(_ARCHS)} (default {default})",
        )
        return ap

    arch_p = arch_parent("trainbox")
    arch_baseline_p = arch_parent("baseline")

    batch_p = argparse.ArgumentParser(add_help=False)
    batch_p.add_argument(
        "-b", "--batch", type=int, default=None, help="per-device batch"
    )

    engine_p = argparse.ArgumentParser(add_help=False)
    engine_p.add_argument(
        "-e", "--engine", default="analytical",
        choices=list(api.ENGINE_NAMES),
        help="simulation engine (default analytical)",
    )

    obs_p = argparse.ArgumentParser(add_help=False)
    obs_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a trace and write Chrome trace_event JSON here",
    )
    obs_p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="collect counters and write the run manifest JSON here",
    )

    cache_p = argparse.ArgumentParser(add_help=False)
    cache_p.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory (off by default)",
    )

    jobs_p = argparse.ArgumentParser(add_help=False)
    jobs_p.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for uncached points (default 1)",
    )

    p = sub.add_parser(
        "simulate", help="simulate one scenario",
        parents=[scenario_p, arch_p, batch_p, engine_p, cache_p, obs_p],
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "sweep", help="throughput vs accelerator count",
        parents=[scenario_p, arch_baseline_p, engine_p, jobs_p, cache_p, obs_p],
    )
    p.add_argument(
        "--explain-batch", action="store_true",
        help="print which path (batch kernel / scalar / cache) served "
        "each point",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "ladder", help="the Figure 19 optimization ladder",
        parents=[scenario_p, engine_p, jobs_p, cache_p, obs_p],
    )
    p.set_defaults(func=_cmd_ladder)

    p = sub.add_parser(
        "trace",
        help="trace one scenario and export Chrome trace_event JSON",
        parents=[scenario_p, arch_p, batch_p, engine_p],
    )
    p.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="output trace path (default trace.json)",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run one scenario instrumented; print top spans and counters",
        parents=[scenario_p, arch_p, batch_p, engine_p],
    )
    p.add_argument(
        "--top", type=int, default=10,
        help="how many span aggregates to show (default 10)",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "plan",
        help="train-initializer plan (prep-pool sizing); "
        "'plan describe <pipeline>' prints a compiled prep plan",
        parents=[scenario_p],
    )
    p.add_argument("--items", type=int, default=1_000_000, help="dataset items")
    p.add_argument(
        "pipeline", nargs="?", default="image",
        help="for 'plan describe': image | image-png | audio",
    )
    p.add_argument(
        "--size", type=int, default=256,
        help="for 'plan describe': source image edge (default 256)",
    )
    p.add_argument(
        "-b", "--batch", type=int, default=32,
        help="for 'plan describe': batch size to compile for (default 32)",
    )
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser(
        "report", help="full session report (use --json for machines)",
        parents=[scenario_p, arch_p, batch_p],
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "bench-codec",
        help="codec throughput smoke test vs the committed baseline",
    )
    p.add_argument(
        "--baseline",
        default="benchmarks/baselines/codec_throughput.json",
        help="baseline JSON path",
    )
    p.add_argument("--size", type=int, default=256, help="square image size")
    p.add_argument("--repeats", type=int, default=10, help="best-of-N repeats")
    p.add_argument("--batch", type=int, default=8, help="encode_batch size")
    p.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    p.set_defaults(func=_cmd_bench_codec)

    p = sub.add_parser(
        "bench-sweep",
        help="sweep-engine throughput smoke test vs the committed baseline",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default sweep_throughput.json, or "
        "sweep_cold.json with --cold)",
    )
    p.add_argument(
        "--cold", action="store_true",
        help="time the 576-point uncached grid: vectorized kernel vs "
        "scalar engine, bit-identity asserted first, >=5x floor enforced",
    )
    p.add_argument("-j", "--jobs", type=int, default=4, help="pool size offered")
    p.add_argument("--repeats", type=int, default=3, help="best-of-N repeats")
    p.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    p.set_defaults(func=_cmd_bench_sweep)

    p = sub.add_parser(
        "bench-prep",
        help="data-prep throughput smoke test vs the committed baseline, "
        "plus the batched-vs-reference speedup gate",
    )
    p.add_argument(
        "--baseline",
        default="benchmarks/baselines/prep_throughput.json",
        help="baseline JSON path",
    )
    p.add_argument("--size", type=int, default=256, help="suite image edge")
    p.add_argument("--batch", type=int, default=32, help="suite batch size")
    p.add_argument(
        "--speedup-size", type=int, default=256,
        help="image edge for the speedup gate",
    )
    p.add_argument(
        "--speedup-batch", type=int, default=256,
        help="batch size for the speedup gate",
    )
    p.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="fail below this batched/reference throughput ratio",
    )
    p.add_argument(
        "--plan", action="store_true",
        help="also gate the compiled-plan path: speedup vs the per-op "
        "vectorized path plus the zero-allocation steady-state check",
    )
    p.add_argument(
        "--min-plan-speedup", type=float, default=1.05,
        help="with --plan, fail below this plan/per-op ratio on the "
        "JPEG pipeline (decode-bound; measured ~1.25x warm)",
    )
    p.add_argument(
        "--min-audio-plan-speedup", type=float, default=1.3,
        help="with --plan, fail below this plan/per-op ratio on the "
        "audio pipeline (measured ~1.5x warm)",
    )
    p.add_argument("--repeats", type=int, default=3, help="best-of-N repeats")
    p.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    p.set_defaults(func=_cmd_bench_prep)

    p = sub.add_parser(
        "chaos",
        help="chaos drill: run every prep-engine failure mode and verify "
        "bit-identical recovery; with --fail, price a fault schedule",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="prep worker processes for the drill (default 2)",
    )
    p.add_argument("--samples", type=int, default=20, help="drill dataset size")
    p.add_argument("--batch", type=int, default=4, help="drill batch size")
    p.add_argument("--seed", type=int, default=7, help="chaos + pipeline seed")
    p.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-shard deadline seconds for the drill (default 2.0)",
    )
    p.add_argument(
        "--fail", action="append", default=[], metavar="DEVICE:FAIL[:RECOVER]",
        help="price a fault schedule instead of the drill; repeatable "
        "(e.g. --fail tbox0_fpga0:10:40)",
    )
    p.add_argument(
        "--workload", default="Resnet-50",
        help="workload for --fail schedule pricing (default Resnet-50)",
    )
    p.add_argument("-a", "--arch", default="trainbox", help=f"one of {sorted(_ARCHS)}")
    p.add_argument(
        "-n", "--accelerators", type=int, default=32,
        help="accelerator count for --fail pricing (default 32)",
    )
    p.add_argument(
        "-e", "--engine", default="analytical",
        choices=list(api.ENGINE_NAMES),
        help="simulation engine (default analytical)",
    )
    p.add_argument(
        "--horizon", type=float, default=60.0,
        help="schedule pricing horizon seconds (default 60)",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run the simulation service (asyncio TCP, NDJSON protocol)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=7543, help="bind port")
    p.add_argument(
        "--workers", type=int, default=None,
        help="engine threads (default: sized from the CPU count)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="cross-request batching window: how long the first queued "
        "point waits for batch-mates before the kernel dispatch fires "
        "(default 2.0)",
    )
    p.add_argument(
        "--max-batch-points", type=int, default=256,
        help="points per kernel dispatch; a full queue flushes without "
        "waiting out the window (default 256)",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="disable cross-request batching (every request takes the "
        "per-request compute path)",
    )
    p.add_argument(
        "--max-pending", type=int, default=64,
        help="admission-control bound on queued+running computations; "
        "beyond it requests get a backpressure rejection (default 64)",
    )
    p.add_argument(
        "--memo", type=int, default=512,
        help="in-process memo entries (default 512)",
    )
    p.add_argument(
        "--quota-rate", type=float, default=None,
        help="per-tenant requests/s token-bucket rate (default unlimited)",
    )
    p.add_argument(
        "--quota-burst", type=float, default=256.0,
        help="per-tenant burst capacity (default 256)",
    )
    p.add_argument(
        "--max-tenants", type=int, default=1024,
        help="live per-tenant quota buckets; idle ones are LRU-evicted "
        "beyond this (default 1024)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="private on-disk result tier for this server",
    )
    p.add_argument(
        "--shared-dir", default=None,
        help="shared cross-process result tier (single-writer locking)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="graceful-drain budget on SIGTERM/close: seconds to wait "
        "for in-flight requests before abandoning them (default 10)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a running simulation service",
        parents=[arch_p, batch_p, engine_p],
    )
    p.add_argument(
        "action", choices=["simulate", "stats", "ping"],
        nargs="?", default="simulate",
        help="simulate a scenario remotely, or an admin op "
        "(ignored with --requests-file)",
    )
    p.add_argument(
        "--requests-file", default=None, metavar="JSONL",
        help="pipeline a JSONL file of request bodies (one "
        "schema-tagged request dict per line) over one connection and "
        "print a served-by summary",
    )
    p.add_argument(
        "workload", nargs="?", default=None,
        help="Table I workload name (for 'simulate')",
    )
    p.add_argument(
        "-n", "--accelerators", type=int, default=256,
        help="NN accelerator count (default 256)",
    )
    p.add_argument("--host", default="127.0.0.1", help="service address")
    p.add_argument("--port", type=int, default=7543, help="service port")
    p.add_argument("--tenant", default="cli", help="tenant id for quotas")
    p.add_argument(
        "--profile", action="store_true",
        help="ask the server for a per-request span summary",
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw response envelope"
    )
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser(
        "bench-service",
        help="service load test (concurrent clients, duplicate-heavy "
        "trace, bit-identity gate) vs the committed latency baseline",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: the mode's committed "
        "baseline under benchmarks/baselines/)",
    )
    p.add_argument(
        "--distinct", action="store_true",
        help="run the cross-request batching gate instead: an "
        "all-distinct analytical trace, batched vs unbatched phases, "
        "bit-identity asserted, batched p99 must beat unbatched by "
        "--min-speedup",
    )
    p.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="with --distinct, fail below this batched/unbatched p99 "
        "latency ratio (default 2.0)",
    )
    p.add_argument(
        "--clients", type=int, default=16,
        help="concurrent client threads (default 16)",
    )
    p.add_argument(
        "--dup", type=int, default=2,
        help="copies of every unique request; 2 makes half the trace "
        "duplicates (default 2; ignored with --distinct)",
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="server engine threads (default 4)",
    )
    p.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    p.add_argument(
        "--chaos", action="store_true",
        help="run the seeded service chaos drill instead: injected "
        "executor faults, dispatch faults, disk-tier IO errors, and "
        "connection drops; asserts non-faulted responses stay "
        "bit-identical, outcome accounting balances, and the server "
        "drains clean",
    )
    p.add_argument(
        "--chaos-seed", type=int, action="append", default=None,
        metavar="SEED",
        help="with --chaos, drill seed (repeatable; default: seeds 5 "
        "and 11)",
    )
    p.set_defaults(func=_cmd_bench_service)

    p = sub.add_parser("workloads", help="print Table I")
    p.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
