"""Exception hierarchy for the TrainBox reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TopologyError(ReproError):
    """The PCIe (or Ethernet) topology is malformed or an operation on it
    is invalid (e.g. routing between devices in different trees)."""


class RoutingError(TopologyError):
    """No route exists between the requested endpoints."""


class ConfigError(ReproError):
    """A server/architecture configuration is inconsistent."""

class CapacityError(ReproError):
    """A resource request exceeds what a device or pool can provide."""


class CodecError(ReproError):
    """Encoding or decoding of a data payload failed."""


class DataprepError(ReproError):
    """A data-preparation pipeline was built or executed incorrectly."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""
