"""Exception hierarchy for the TrainBox reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package.

    ``retryable`` is the failure taxonomy the resilient prep engine
    dispatches on: a retryable error means the *attempt* failed (a
    worker crashed, a deadline expired, a read glitched) and the same
    work may succeed if repeated, while a non-retryable error means the
    work itself is wrong and repeating it only burns the retry budget.
    """

    retryable = False


class TopologyError(ReproError):
    """The PCIe (or Ethernet) topology is malformed or an operation on it
    is invalid (e.g. routing between devices in different trees)."""


class RoutingError(TopologyError):
    """No route exists between the requested endpoints."""


class ConfigError(ReproError):
    """A server/architecture configuration is inconsistent."""

class CapacityError(ReproError):
    """A resource request exceeds what a device or pool can provide."""


class CodecError(ReproError):
    """Encoding or decoding of a data payload failed."""


class DataprepError(ReproError):
    """A data-preparation pipeline was built or executed incorrectly."""


class PrepWorkerCrash(DataprepError):
    """A prep worker process died (or reported a failure) while it held
    in-flight shards.  Retryable: the shard can be re-dispatched to a
    surviving or respawned worker."""

    retryable = True


class ShardTimeoutError(DataprepError):
    """A shard missed its per-shard deadline — the worker is hung, the
    completion message was lost, or the host is badly overloaded.
    Retryable: the worker is replaced and the shard re-dispatched."""

    retryable = True


class PoisonShardError(DataprepError):
    """A shard failed on every worker attempt *and* on the in-process
    reference path, so retrying cannot help.  Not retryable."""

    retryable = False


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""
