"""Synthetic ImageNet-like dataset: real JPEG bytes, synthetic pictures.

Images are procedurally generated (smooth gradients + textured patches +
noise) so that they compress at photo-like ratios with the package's own
codec, and every item carries a class label so the training substrate can
consume the dataset end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep.jpeg import encode, encode_batch
from repro.dataprep.pipeline import SampleSpec


@dataclass(frozen=True)
class ImageDatasetSpec:
    """Static description used by the simulator (no data generated)."""

    name: str
    height: int
    width: int
    num_items: int
    compressed_bytes: float
    num_classes: int = 1000

    def sample_spec(self) -> SampleSpec:
        return SampleSpec(
            "jpeg", (self.height, self.width, 3), self.compressed_bytes
        )


#: ImageNet as the paper stores it: 14 M items, 256×256 JPEG.  45 KB is a
#: photo-typical compressed size at quality ~75-85 (≈4.4:1 versus raw RGB).
IMAGENET_LIKE = ImageDatasetSpec(
    name="imagenet-like",
    height=256,
    width=256,
    num_items=14_000_000,
    compressed_bytes=45_000.0,
)


def synthesize_image(
    rng: np.random.Generator, height: int, width: int, label: int
) -> np.ndarray:
    """A photo-like uint8 RGB image whose appearance depends on ``label``.

    Smooth background gradient (label-keyed hue) + a few soft blobs +
    mild sensor noise: compresses like a photograph, and classes are
    visually distinct so a classifier can actually learn them.
    """
    if height < 8 or width < 8:
        raise DataprepError(f"image too small: {height}x{width}")
    ys = np.linspace(0.0, 1.0, height)[:, None]
    xs = np.linspace(0.0, 1.0, width)[None, :]
    phase = (label % 16) / 16.0
    # Horizontal structure depends on |x - 0.5| so the class signal is
    # mirror-symmetric: flipping an image never changes its label, which
    # keeps mirror augmentation label-preserving.
    xsym = np.abs(xs - 0.5) * 2.0
    base = np.stack(
        [
            120 + 100 * np.sin(2 * np.pi * (xsym + phase)) * ys,
            120 + 100 * np.cos(2 * np.pi * (ys + phase)) * xsym,
            np.full((height, width), 90.0 + 8.0 * (label % 8)),
        ],
        axis=-1,
    )
    for _ in range(3):
        cy = rng.uniform(0, height)
        cx = rng.uniform(0, width)
        radius = rng.uniform(min(height, width) / 8, min(height, width) / 3)
        blob = np.exp(
            -(((ys * height - cy) ** 2 + (xs * width - cx) ** 2) / (2 * radius**2))
        )
        base += blob[..., None] * rng.uniform(-60, 60, size=3)
    base += rng.normal(0.0, 3.0, base.shape)
    return np.clip(base, 0, 255).astype(np.uint8)


class SyntheticImageDataset:
    """Generates (jpeg_bytes, label) items on demand, deterministically.

    Item ``i`` is always the same for a given seed, so shards can be
    regenerated independently on any worker — mirroring how the train
    initializer distributes data to per-box SSDs (§V-A).
    """

    def __init__(
        self,
        num_items: int,
        height: int = 64,
        width: int = 64,
        num_classes: int = 10,
        quality: int = 80,
        seed: int = 0,
    ) -> None:
        if num_items <= 0:
            raise DataprepError("num_items must be positive")
        if num_classes <= 0:
            raise DataprepError("num_classes must be positive")
        self.num_items = num_items
        self.height = height
        self.width = width
        self.num_classes = num_classes
        self.quality = quality
        self.seed = seed

    def __len__(self) -> int:
        return self.num_items

    def label_of(self, index: int) -> int:
        return index % self.num_classes

    def raw_item(self, index: int) -> Tuple[np.ndarray, int]:
        """The uncompressed image and label for item ``index``."""
        if not 0 <= index < self.num_items:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, index))
        label = self.label_of(index)
        return synthesize_image(rng, self.height, self.width, label), label

    def __getitem__(self, index: int) -> Tuple[bytes, int]:
        image, label = self.raw_item(index)
        return encode(image, quality=self.quality), label

    def __iter__(self) -> Iterator[Tuple[bytes, int]]:
        for i in range(self.num_items):
            yield self[i]

    def batch(self, start: int, count: int) -> List[Tuple[bytes, int]]:
        """Items ``start .. start+count`` encoded in one batched codec
        call: all images share a shape, so the DCT/quantization stages run
        over one tall stacked plane instead of per-image arrays.  Item
        ``i`` of the result is byte-identical to ``self[start + i]``.
        """
        if count <= 0:
            raise DataprepError("batch count must be positive")
        if not 0 <= start <= self.num_items - count:
            raise IndexError(f"batch [{start}, {start + count}) out of range")
        pairs = [self.raw_item(start + i) for i in range(count)]
        blobs = encode_batch([img for img, _ in pairs], quality=self.quality)
        return [(blob, label) for blob, (_, label) in zip(blobs, pairs)]

    def measured_spec(self, probe_items: int = 4) -> SampleSpec:
        """A :class:`SampleSpec` whose compressed size is measured from a
        few generated items rather than assumed."""
        probe = min(probe_items, self.num_items)
        sizes = [len(blob) for blob, _ in self.batch(0, probe)]
        return SampleSpec(
            "jpeg", (self.height, self.width, 3), float(np.mean(sizes))
        )

    def shard_loader(self) -> "ImageShardLoader":
        """A picklable loader for :class:`repro.dataprep.engine.PrepEngine`."""
        return ImageShardLoader(self)


@dataclass(frozen=True)
class ImageShardLoader:
    """Shard loader feeding the prep engine: JPEG blobs for a global
    sample range.  The dataset regenerates items deterministically from
    its seed, so workers need no data transfer — only this descriptor."""

    dataset: SyntheticImageDataset

    def __call__(self, start: int, count: int) -> List[bytes]:
        return [blob for blob, _ in self.dataset.batch(start, count)]

    def labels(self, start: int, count: int) -> np.ndarray:
        """Labels for the same range (cheap: no pixels generated)."""
        return np.array(
            [self.dataset.label_of(start + i) for i in range(count)]
        )
