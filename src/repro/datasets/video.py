"""Synthetic video dataset: motion-JPEG clips of moving synthetic scenes.

Video is the paper's canonical example of a *new input form* a user adds
to TrainBox through partial reconfiguration (§V-C).  Clips are sequences
of frames from the image synthesizer with a drifting viewpoint, packed
with :func:`repro.dataprep.ops_video.encode_clip`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep.jpeg import encode_batch
from repro.dataprep.ops_video import encode_clip, pack_clip
from repro.dataprep.pipeline import SampleSpec
from repro.datasets.imagenet import synthesize_image


@dataclass(frozen=True)
class VideoDatasetSpec:
    """Static description used by the simulator (no data generated)."""

    name: str
    frames_per_clip: int
    height: int
    width: int
    num_items: int
    compressed_bytes_per_frame: float

    def sample_spec(self) -> SampleSpec:
        return SampleSpec(
            "video_mjpeg",
            (self.frames_per_clip, self.height, self.width, 3),
            self.frames_per_clip * self.compressed_bytes_per_frame,
        )


#: A Kinetics-class clip dataset: 16-frame 256×256 clips, frame payloads
#: sized like the ImageNet JPEGs.
KINETICS_LIKE = VideoDatasetSpec(
    name="kinetics-like",
    frames_per_clip=16,
    height=256,
    width=256,
    num_items=650_000,
    compressed_bytes_per_frame=45_000.0,
)


class SyntheticVideoDataset:
    """Generates (clip_bytes, action_label) items deterministically."""

    def __init__(
        self,
        num_items: int,
        frames_per_clip: int = 8,
        height: int = 48,
        width: int = 48,
        num_classes: int = 8,
        quality: int = 80,
        seed: int = 0,
    ) -> None:
        if num_items <= 0:
            raise DataprepError("num_items must be positive")
        if frames_per_clip <= 0:
            raise DataprepError("frames_per_clip must be positive")
        self.num_items = num_items
        self.frames_per_clip = frames_per_clip
        self.height = height
        self.width = width
        self.num_classes = num_classes
        self.quality = quality
        self.seed = seed

    def __len__(self) -> int:
        return self.num_items

    def label_of(self, index: int) -> int:
        return index % self.num_classes

    def raw_item(self, index: int) -> Tuple[np.ndarray, int]:
        """The uncompressed (T, H, W, 3) clip and its label.

        The label keys both the scene (via the image synthesizer) and the
        motion: each class pans at a distinct velocity, so a video model
        genuinely needs the temporal dimension.
        """
        if not 0 <= index < self.num_items:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, index))
        label = self.label_of(index)
        # Synthesize an oversized scene once, then pan a window across it.
        margin = 2 * self.frames_per_clip
        scene = synthesize_image(
            rng, self.height + margin, self.width + margin, label
        )
        velocity = 1 + label % 3
        frames = []
        for t in range(self.frames_per_clip):
            offset = min(t * velocity, margin)
            frames.append(
                scene[offset : offset + self.height, offset : offset + self.width]
            )
        return np.stack(frames), label

    def __getitem__(self, index: int) -> Tuple[bytes, int]:
        clip, label = self.raw_item(index)
        return encode_clip(list(clip), quality=self.quality), label

    def __iter__(self) -> Iterator[Tuple[bytes, int]]:
        for i in range(self.num_items):
            yield self[i]

    def batch(self, start: int, count: int) -> List[Tuple[bytes, int]]:
        """Items ``start .. start+count`` with every clip's frames fed
        through one batched JPEG encode (all frames share a shape, so
        the whole batch's DCT/quantize stages run over one tall stack).
        Item ``i`` is byte-identical to ``self[start + i]``."""
        if count <= 0:
            raise DataprepError("batch count must be positive")
        if not 0 <= start <= self.num_items - count:
            raise IndexError(f"batch [{start}, {start + count}) out of range")
        pairs = [self.raw_item(start + i) for i in range(count)]
        flat = encode_batch(
            [frame for clip, _ in pairs for frame in clip],
            quality=self.quality,
        )
        out = []
        t = self.frames_per_clip
        for j, (_, label) in enumerate(pairs):
            out.append((pack_clip(flat[j * t : (j + 1) * t]), label))
        return out

    def shard_loader(self) -> "VideoShardLoader":
        """A picklable loader for :class:`repro.dataprep.engine.PrepEngine`."""
        return VideoShardLoader(self)

    def measured_spec(self, probe_items: int = 2) -> SampleSpec:
        probe = min(probe_items, self.num_items)
        sizes = [len(self[i][0]) for i in range(probe)]
        return SampleSpec(
            "video_mjpeg",
            (self.frames_per_clip, self.height, self.width, 3),
            float(np.mean(sizes)),
        )


@dataclass(frozen=True)
class VideoShardLoader:
    """Shard loader feeding the prep engine: clip containers for a
    global sample range, regenerated deterministically on any worker."""

    dataset: SyntheticVideoDataset

    def __call__(self, start: int, count: int) -> List[bytes]:
        return [clip for clip, _ in self.dataset.batch(start, count)]

    def labels(self, start: int, count: int) -> np.ndarray:
        return np.array(
            [self.dataset.label_of(start + i) for i in range(count)]
        )
