"""Synthetic dataset generators.

The paper trains on ImageNet (stored as 256×256 JPEG) and Librispeech
(sound streams of 6.96 s on average, §III-B1).  Neither is shippable
here, so these generators produce synthetic equivalents with the same
*format and size distributions* — which is all data preparation cost
depends on (the decode/augment work is a function of geometry, not of
picture content).  The substitution is recorded in DESIGN.md.
"""

from repro.datasets.imagenet import SyntheticImageDataset, IMAGENET_LIKE
from repro.datasets.librispeech import SyntheticSpeechDataset, LIBRISPEECH_LIKE
from repro.datasets.sampling import (
    ShuffleBuffer,
    WeightedSampler,
    epoch_permutation,
)
from repro.datasets.storage import DataShard, shard_dataset
from repro.datasets.video import KINETICS_LIKE, SyntheticVideoDataset

__all__ = [
    "DataShard",
    "IMAGENET_LIKE",
    "KINETICS_LIKE",
    "LIBRISPEECH_LIKE",
    "ShuffleBuffer",
    "SyntheticImageDataset",
    "SyntheticSpeechDataset",
    "SyntheticVideoDataset",
    "WeightedSampler",
    "epoch_permutation",
    "shard_dataset",
]
