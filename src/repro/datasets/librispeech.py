"""Synthetic Librispeech-like dataset: speech-shaped PCM streams.

Utterances are harmonic tone stacks with a slow amplitude envelope and a
noise floor — spectrally structured enough that Mel features are
non-trivial — with a duration distribution centered on the paper's 6.96 s
average (§III-B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep.pipeline import SampleSpec


@dataclass(frozen=True)
class SpeechDatasetSpec:
    """Static description used by the simulator (no data generated)."""

    name: str
    mean_duration_s: float
    sample_rate: int
    num_items: int
    bytes_per_sample: int = 2  # 16-bit PCM

    @property
    def mean_samples(self) -> int:
        return int(round(self.mean_duration_s * self.sample_rate))

    def sample_spec(self) -> SampleSpec:
        return SampleSpec(
            "audio_pcm",
            (self.mean_samples,),
            float(self.mean_samples * self.bytes_per_sample),
        )


#: Librispeech as the paper uses it: streams of 6.96 s on average, 16 kHz.
LIBRISPEECH_LIKE = SpeechDatasetSpec(
    name="librispeech-like",
    mean_duration_s=6.96,
    sample_rate=16_000,
    num_items=281_000,
)


def synthesize_utterance(
    rng: np.random.Generator, n_samples: int, sample_rate: int, speaker: int
) -> np.ndarray:
    """An int16 PCM stream with speech-like structure.

    A speaker-keyed fundamental (~90-220 Hz) with harmonics, a syllabic
    4 Hz amplitude envelope, and a noise floor.
    """
    if n_samples <= 0:
        raise DataprepError("n_samples must be positive")
    t = np.arange(n_samples) / sample_rate
    f0 = 90.0 + (speaker % 16) * 8.0
    signal = np.zeros(n_samples)
    for harmonic in range(1, 6):
        signal += np.sin(2 * np.pi * f0 * harmonic * t) / harmonic
    envelope = 0.55 + 0.45 * np.sin(2 * np.pi * 4.0 * t + rng.uniform(0, 2 * np.pi))
    signal = signal * envelope + rng.normal(0.0, 0.05, n_samples)
    peak = np.max(np.abs(signal))
    return np.clip(signal / (peak + 1e-9) * 0.8 * 32767, -32768, 32767).astype(
        np.int16
    )


class SyntheticSpeechDataset:
    """Generates (pcm_int16, transcript_label) items deterministically."""

    def __init__(
        self,
        num_items: int,
        mean_duration_s: float = 6.96,
        duration_jitter: float = 0.25,
        sample_rate: int = 16_000,
        num_speakers: int = 40,
        seed: int = 0,
    ) -> None:
        if num_items <= 0:
            raise DataprepError("num_items must be positive")
        if mean_duration_s <= 0:
            raise DataprepError("mean_duration_s must be positive")
        if not 0 <= duration_jitter < 1:
            raise DataprepError("duration_jitter must be in [0, 1)")
        self.num_items = num_items
        self.mean_duration_s = mean_duration_s
        self.duration_jitter = duration_jitter
        self.sample_rate = sample_rate
        self.num_speakers = num_speakers
        self.seed = seed

    def __len__(self) -> int:
        return self.num_items

    def duration_of(self, index: int) -> float:
        """Deterministic per-item duration in seconds."""
        rng = np.random.default_rng((self.seed, index, 1))
        jitter = rng.uniform(-self.duration_jitter, self.duration_jitter)
        return self.mean_duration_s * (1.0 + jitter)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        if not 0 <= index < self.num_items:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, index))
        speaker = index % self.num_speakers
        n_samples = int(round(self.duration_of(index) * self.sample_rate))
        return (
            synthesize_utterance(rng, n_samples, self.sample_rate, speaker),
            speaker,
        )

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for i in range(self.num_items):
            yield self[i]

    def measured_spec(self, probe_items: int = 4) -> SampleSpec:
        probe = min(probe_items, self.num_items)
        sizes = [self[i][0].shape[0] for i in range(probe)]
        mean_samples = int(np.mean(sizes))
        return SampleSpec("audio_pcm", (mean_samples,), float(mean_samples * 2))

    def batch(self, start: int, count: int) -> List[Tuple[np.ndarray, int]]:
        """Items ``start .. start+count``.  Utterances are ragged in
        general, so the batch is a list; with ``duration_jitter=0``
        every item has the same length and the prep pipeline's batched
        (stacked) path — and the multi-process engine — apply."""
        if count <= 0:
            raise DataprepError("batch count must be positive")
        if not 0 <= start <= self.num_items - count:
            raise IndexError(f"batch [{start}, {start + count}) out of range")
        return [self[start + i] for i in range(count)]

    def shard_loader(self) -> "SpeechShardLoader":
        """A picklable loader for :class:`repro.dataprep.engine.PrepEngine`
        (worker mode needs ``duration_jitter=0`` so batches stack)."""
        return SpeechShardLoader(self)


@dataclass(frozen=True)
class SpeechShardLoader:
    """Shard loader feeding the prep engine: PCM streams for a global
    sample range, regenerated deterministically on any worker."""

    dataset: SyntheticSpeechDataset

    def __call__(self, start: int, count: int) -> List[np.ndarray]:
        return [pcm for pcm, _ in self.dataset.batch(start, count)]

    def labels(self, start: int, count: int) -> np.ndarray:
        return np.array(
            [(start + i) % self.dataset.num_speakers for i in range(count)]
        )
