"""Shuffling and weighted sampling — the footnote-3 operations.

The paper's prototype excludes preparation operations "which have
dependency among items" (shuffling, weighted sampling) and notes
TrainBox can support them "in either data replication among SSDs or
communication through the prep-pool network" (§V-C footnote).  This
module supplies both halves:

* the **operations themselves** — a bounded streaming shuffle buffer, a
  deterministic epoch shuffler, and an O(1) weighted sampler (Walker's
  alias method);
* the **cost models** for running them across train boxes: full
  replication (storage multiplier) versus exchanging non-local samples
  over the preparation network (Ethernet traffic per sample), plus a
  helper that recommends a strategy given the hardware budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro import units


class ShuffleBuffer:
    """Bounded streaming shuffle (the tf.data idiom).

    Items enter a buffer of size ``capacity``; each pop returns a
    uniformly random buffered item.  With ``capacity >= len(stream)``
    this is a full Fisher-Yates shuffle; smaller buffers trade
    randomness for memory, which is exactly the knob a per-box shuffler
    would expose.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._buffer: List = []

    def shuffle(self, stream: Iterable) -> Iterator:
        """Yield the stream's items in (windowed) shuffled order."""
        for item in stream:
            if len(self._buffer) < self.capacity:
                self._buffer.append(item)
                continue
            slot = int(self._rng.integers(0, self.capacity))
            yield self._buffer[slot]
            self._buffer[slot] = item
        while self._buffer:
            slot = int(self._rng.integers(0, len(self._buffer)))
            self._buffer[slot], self._buffer[-1] = (
                self._buffer[-1],
                self._buffer[slot],
            )
            yield self._buffer.pop()


def epoch_permutation(num_items: int, epoch: int, seed: int = 0) -> np.ndarray:
    """The deterministic global permutation for one epoch: every worker
    can regenerate it locally, so no coordination traffic is needed."""
    if num_items <= 0:
        raise ConfigError("num_items must be positive")
    rng = np.random.default_rng((seed, epoch))
    return rng.permutation(num_items)


class WeightedSampler:
    """Walker's alias method: O(n) build, O(1) per draw."""

    def __init__(self, weights: Sequence[float], seed: int = 0) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ConfigError("weights must be a non-empty 1-D sequence")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ConfigError("weights must be non-negative with positive sum")
        self.n = weights.size
        self.probabilities = weights / weights.sum()
        self._rng = np.random.default_rng(seed)

        scaled = self.probabilities * self.n
        self._prob = np.zeros(self.n)
        self._alias = np.zeros(self.n, dtype=np.int64)
        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        for leftover in small + large:
            self._prob[leftover] = 1.0
            self._alias[leftover] = leftover

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` indices with replacement."""
        if count <= 0:
            raise ConfigError("count must be positive")
        cols = self._rng.integers(0, self.n, size=count)
        accept = self._rng.random(count) < self._prob[cols]
        return np.where(accept, cols, self._alias[cols])


# ---------------------------------------------------------------------------
# Cross-box cost models (the footnote's two strategies).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShuffleStrategyCost:
    """Cost of supporting global shuffling across ``n_boxes`` boxes."""

    strategy: str
    extra_storage_bytes: float
    ethernet_bytes_per_sample: float


def replication_cost(n_boxes: int, dataset_bytes: float) -> ShuffleStrategyCost:
    """Strategy (a): every box stores the whole dataset, so any global
    permutation is served locally.  Storage inflates by (n_boxes - 1)×;
    no network traffic."""
    if n_boxes <= 0:
        raise ConfigError("n_boxes must be positive")
    if dataset_bytes < 0:
        raise ConfigError("dataset_bytes must be >= 0")
    return ShuffleStrategyCost(
        strategy="replication",
        extra_storage_bytes=(n_boxes - 1) * dataset_bytes,
        ethernet_bytes_per_sample=0.0,
    )


def exchange_cost(n_boxes: int, bytes_per_item: float) -> ShuffleStrategyCost:
    """Strategy (b): data stays sharded; under a uniform global
    permutation a sample is non-local with probability (1 - 1/n_boxes)
    and must cross the preparation network once."""
    if n_boxes <= 0:
        raise ConfigError("n_boxes must be positive")
    if bytes_per_item < 0:
        raise ConfigError("bytes_per_item must be >= 0")
    miss = 1.0 - 1.0 / n_boxes
    return ShuffleStrategyCost(
        strategy="exchange",
        extra_storage_bytes=0.0,
        ethernet_bytes_per_sample=miss * bytes_per_item,
    )


def recommend_strategy(
    n_boxes: int,
    dataset_bytes: float,
    bytes_per_item: float,
    sample_rate: float,
    spare_storage_bytes: float,
    ethernet_bandwidth: float = 12.5 * units.GB,
    fpgas_per_box: int = 2,
) -> ShuffleStrategyCost:
    """Pick a shuffling strategy that fits the hardware budget.

    Prefers replication when the spare SSD capacity holds it (zero
    run-time cost); otherwise checks that the exchange traffic fits each
    box FPGA's Ethernet headroom and returns the exchange plan.
    """
    replication = replication_cost(n_boxes, dataset_bytes)
    if replication.extra_storage_bytes <= spare_storage_bytes:
        return replication
    exchange = exchange_cost(n_boxes, bytes_per_item)
    per_box_rate = sample_rate / n_boxes
    per_fpga_traffic = (
        exchange.ethernet_bytes_per_sample * per_box_rate / fpgas_per_box
    )
    if per_fpga_traffic > ethernet_bandwidth:
        raise ConfigError(
            f"global shuffling infeasible: exchange needs "
            f"{per_fpga_traffic / units.GB:.1f} GB/s per FPGA link "
            f"({ethernet_bandwidth / units.GB:.1f} available) and "
            f"replication needs {replication.extra_storage_bytes / units.TB:.1f} TB "
            f"({spare_storage_bytes / units.TB:.1f} spare)"
        )
    return exchange
