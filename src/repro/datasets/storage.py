"""Data distribution across the SSDs of train boxes.

TrainBox's clustering (§IV-D, §V-A) requires that the data a box's
accelerators consume live on the box's own SSDs — the train initializer
"distributes the data to SSDs in each train box" before training starts.
This module implements that partitioning and its invariants: every item
is assigned exactly once, shards are balanced, and capacity is respected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import CapacityError, ConfigError


@dataclass
class DataShard:
    """The slice of a dataset stored on one SSD."""

    ssd_id: str
    item_indices: range

    def __len__(self) -> int:
        return len(self.item_indices)

    def bytes_stored(self, bytes_per_item: float) -> float:
        return len(self) * bytes_per_item


def shard_dataset(
    num_items: int,
    ssd_ids: Sequence[str],
    bytes_per_item: float = 0.0,
    ssd_capacity: float = float("inf"),
) -> List[DataShard]:
    """Split ``num_items`` contiguously and near-evenly across SSDs.

    Contiguous shards preserve sequential read locality on each drive.
    Shard sizes differ by at most one item.  Raises
    :class:`CapacityError` if a shard would not fit on its drive.
    """
    if num_items <= 0:
        raise ConfigError("num_items must be positive")
    if not ssd_ids:
        raise ConfigError("need at least one SSD")
    if len(set(ssd_ids)) != len(ssd_ids):
        raise ConfigError(f"duplicate SSD ids: {list(ssd_ids)}")
    n = len(ssd_ids)
    base = num_items // n
    extra = num_items % n
    shards: List[DataShard] = []
    start = 0
    for i, ssd_id in enumerate(ssd_ids):
        count = base + (1 if i < extra else 0)
        shard = DataShard(ssd_id, range(start, start + count))
        if bytes_per_item and shard.bytes_stored(bytes_per_item) > ssd_capacity:
            raise CapacityError(
                f"shard for {ssd_id} needs "
                f"{shard.bytes_stored(bytes_per_item):.3e} B > capacity "
                f"{ssd_capacity:.3e} B"
            )
        shards.append(shard)
        start += count
    assert start == num_items
    return shards


def validate_sharding(shards: Sequence[DataShard], num_items: int) -> None:
    """Check full, disjoint coverage of ``range(num_items)``."""
    seen: Dict[int, str] = {}
    for shard in shards:
        for idx in shard.item_indices:
            if idx in seen:
                raise ConfigError(
                    f"item {idx} stored on both {seen[idx]} and {shard.ssd_id}"
                )
            seen[idx] = shard.ssd_id
    if len(seen) != num_items:
        missing = set(range(num_items)) - set(seen)
        raise ConfigError(f"{len(missing)} items unassigned (e.g. {sorted(missing)[:5]})")
