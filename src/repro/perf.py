"""Timing utilities and the codec-throughput regression harness.

Wall-clock measurements on shared machines are noisy, so every number
here is a best-of-N (minimum over repeats): the minimum is the run least
disturbed by the scheduler, and throughput ratios computed from minima
are stable even when absolute times drift between hosts.

Throughputs are recorded as samples/s in a small JSON baseline; the
``python -m repro bench-codec`` smoke test (and the matching pytest
benchmark) fails loudly when a measurement drops more than the tolerance
below its committed baseline.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigError

#: Fractional slowdown tolerated before a measurement counts as a
#: regression.  Override with the REPRO_BENCH_TOLERANCE env var (e.g. on
#: hosts much slower than the one that recorded the baseline).
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class Measurement:
    """One throughput sample: ``samples`` work items in ``best_seconds``."""

    name: str
    samples: int
    best_seconds: float

    @property
    def samples_per_s(self) -> float:
        if self.best_seconds <= 0:
            return math.inf
        return self.samples / self.best_seconds


def best_of(fn: Callable[[], object], repeats: int = 15) -> float:
    """Minimum wall time of ``repeats`` calls to ``fn``, in seconds."""
    if repeats <= 0:
        raise ConfigError("repeats must be positive")
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(
    name: str, fn: Callable[[], object], samples: int, repeats: int = 15
) -> Measurement:
    """Time ``fn`` (which processes ``samples`` items per call) best-of-N."""
    if samples <= 0:
        raise ConfigError("samples must be positive")
    return Measurement(name, samples, best_of(fn, repeats=repeats))


def assert_zero_alloc(
    fn: Callable[[], object],
    *,
    warmup: int = 2,
    iters: int = 5,
    limit_bytes: int = 16_384,
) -> int:
    """Assert ``fn`` retains no memory across repeated calls.

    The check measures **net retained** traced memory, not gross
    allocations: a steady-state function may allocate temporaries (e.g.
    ``np.fft.rfft`` output) as long as they are freed before the next
    call, but anything that accumulates — a new output array per call, a
    growing cache — shows up as traced-memory growth.  ``fn`` runs
    ``warmup`` untraced calls plus one traced one (so lazily-built
    caches, interned objects and arena buffers are paid for before the
    measurement), then ``iters`` measured calls; growth beyond
    ``limit_bytes`` (a small allowance for interpreter noise) raises
    ``AssertionError``.  Returns the measured growth in bytes.
    """
    import gc
    import tracemalloc

    if iters <= 0:
        raise ConfigError("iters must be positive")
    for _ in range(max(0, warmup)):
        fn()
    gc.collect()
    tracemalloc.start()
    try:
        fn()  # traced warm-up: one-time lazy allocations land here
        gc.collect()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(iters):
            fn()
        gc.collect()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    growth = after - before
    if growth > limit_bytes:
        raise AssertionError(
            f"steady-state calls retained {growth} bytes over {iters} "
            f"iterations (limit {limit_bytes}); the path is not "
            f"zero-allocation"
        )
    return growth


def tolerance() -> float:
    """The configured regression tolerance (env override wins)."""
    raw = os.environ.get("REPRO_BENCH_TOLERANCE")
    if raw is None:
        return DEFAULT_TOLERANCE
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"bad REPRO_BENCH_TOLERANCE: {raw!r}")
    if not 0 <= value < 1:
        raise ConfigError("REPRO_BENCH_TOLERANCE must be in [0, 1)")
    return value


def save_baseline(path: Path, measurements: List[Measurement]) -> None:
    """Write ``measurements`` as the committed throughput baseline."""
    payload = {
        "unit": "samples_per_s",
        "samples_per_s": {
            m.name: round(m.samples_per_s, 2) for m in measurements
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> Dict[str, float]:
    """The baseline's name → samples/s map ({} when no baseline exists)."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    table = payload.get("samples_per_s", {})
    return {str(k): float(v) for k, v in table.items()}


def regressions(
    measurements: List[Measurement],
    baseline: Dict[str, float],
    tol: Optional[float] = None,
) -> List[str]:
    """Human-readable description of every measurement more than ``tol``
    below its baseline.  Names absent from the baseline are not judged."""
    tol = tolerance() if tol is None else tol
    out = []
    for m in measurements:
        ref = baseline.get(m.name)
        if ref is None or ref <= 0:
            continue
        floor = ref * (1.0 - tol)
        if m.samples_per_s < floor:
            out.append(
                f"{m.name}: {m.samples_per_s:,.1f} samples/s is "
                f"{100 * (1 - m.samples_per_s / ref):.0f}% below the "
                f"baseline {ref:,.1f} (tolerance {100 * tol:.0f}%)"
            )
    return out


# -- the codec suite ---------------------------------------------------------


def bench_image(height: int = 256, width: int = 256, seed: int = 7) -> np.ndarray:
    """The photo-like test image all codec throughput numbers refer to.

    Smooth gradient + band-limited texture + sensor noise: compresses at
    ~17:1 with the package's JPEG at quality 75, squarely in the range
    real photographs hit, so the entropy stage sees a photo-typical
    symbol load rather than a near-empty one.
    """
    rng = np.random.default_rng(seed)
    gx = np.linspace(0, 255, width)
    gy = np.linspace(0, 255, height)
    base = gy[:, None, None] * 0.35 + gx[None, :, None] * 0.35
    yy, xx = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
    texture = (
        18 * np.sin(2 * np.pi * xx / 9.0 + yy / 17.0)
        + 14 * np.sin(2 * np.pi * yy / 7.0)
    )[..., None]
    img = base + 60.0 + texture + rng.normal(0, 10, (height, width, 3))
    return np.clip(img, 0, 255).astype(np.uint8)


def codec_suite(
    size: int = 256, repeats: int = 10, batch: int = 8
) -> List[Measurement]:
    """Throughput of the JPEG/PNG fast paths on a ``size``×``size`` image.

    Each entry is images/s; the batched entry counts every image in the
    batch, so it is directly comparable to the per-image number.
    """
    from repro.dataprep import jpeg
    from repro.dataprep.png import codec as png

    img = bench_image(size, size)
    jblob = jpeg.encode(img, quality=75)
    pblob = png.encode(img)
    stack = [bench_image(size, size, seed=100 + i) for i in range(batch)]
    return [
        measure(
            f"jpeg_encode_{size}",
            lambda: jpeg.encode(img, quality=75),
            1,
            repeats,
        ),
        measure(f"jpeg_decode_{size}", lambda: jpeg.decode(jblob), 1, repeats),
        measure(
            f"jpeg_encode_batch{batch}_{size}",
            lambda: jpeg.encode_batch(stack, quality=75),
            batch,
            repeats,
        ),
        measure(f"png_encode_{size}", lambda: png.encode(img), 1, repeats),
        measure(f"png_decode_{size}", lambda: png.decode(pblob), 1, repeats),
    ]


# -- the sweep suite ---------------------------------------------------------


def sweep_suite(
    repeats: int = 3, n_jobs: int = 4, cache_dir: Optional[Path] = None
) -> List[Measurement]:
    """Throughput of the Figure 21 grid through the sweep engine.

    Two measurements, points/s each:

    * ``fig21_serial_uncached`` — every point computed from scratch
      (the in-process memo is cleared inside the timed region);
    * ``fig21_warm_cache`` — the same grid served from a warmed
      persistent cache with ``n_jobs`` workers available (all hits, so
      the pool is never spun up — the measurement is the cache path).
    """
    import shutil
    import tempfile

    from repro.cache import ResultCache, clear_memo
    from repro.core.sweeps import figure21_spec, run_sweep

    spec = figure21_spec()
    n_points = len(spec.points())

    def serial_uncached():
        clear_memo()
        run_sweep(spec, n_jobs=1)

    out = [measure("fig21_serial_uncached", serial_uncached, n_points, repeats)]

    tmp = (
        tempfile.mkdtemp(prefix="repro-sweep-bench-")
        if cache_dir is None
        else str(cache_dir)
    )
    try:
        run_sweep(spec, n_jobs=1, cache=ResultCache(tmp))  # warm the cache

        def warm_cached():
            run_sweep(spec, n_jobs=n_jobs, cache=ResultCache(tmp))

        out.append(measure("fig21_warm_cache", warm_cached, n_points, repeats))
    finally:
        if cache_dir is None:
            shutil.rmtree(tmp, ignore_errors=True)
    return out


#: Minimum cold batch-vs-scalar speedup ``bench-sweep --cold`` enforces
#: on the ≥512-point grid.
MIN_BATCH_SPEEDUP = 5.0


def sweep_cold_grid():
    """The uncached grid the cold-sweep gate runs (8 workloads × 8
    architecture variants × the 9-step scale ladder = 576 points).

    Every Table I workload plus the CNN-Video extension row, crossed
    with the full architecture ladder (baseline, +Acc GPU/FPGA, +P2P,
    +Gen4, clustered, clustered+pool) and a tree-sync TrainBox variant
    so all three sync closed forms are exercised.
    """
    import dataclasses

    from repro.core.config import ArchitectureConfig, PrepDevice, SyncStrategy
    from repro.core.sweeps import SCALE_LADDER, SweepSpec
    from repro.workloads.registry import EXTENSION_WORKLOADS, TABLE_I

    workloads = tuple(TABLE_I.values()) + tuple(EXTENSION_WORKLOADS.values())
    archs = (
        ArchitectureConfig.baseline(),
        ArchitectureConfig.baseline_acc(PrepDevice.GPU),
        ArchitectureConfig.baseline_acc(),
        ArchitectureConfig.baseline_acc_p2p(),
        ArchitectureConfig.baseline_acc_p2p_gen4(),
        ArchitectureConfig.trainbox(prep_pool=False),
        ArchitectureConfig.trainbox(),
        dataclasses.replace(
            ArchitectureConfig.trainbox(),
            name="trainbox+tree",
            sync=SyncStrategy.TREE,
        ),
    )
    return SweepSpec(workloads=workloads, archs=archs, scales=SCALE_LADDER)


def sweep_cold_suite(repeats: int = 3):
    """Cold-grid timings of the vectorized kernel vs the scalar engine.

    Returns ``(measurements, speedup)``: points/s for
    ``sweep_cold_batch`` and ``sweep_cold_scalar`` (the in-process memo
    is cleared inside each timed region, so every repeat pays full
    construction), and their ratio.  **Bit-identity is asserted before
    any timing**: the batch outcome must take every point (no silent
    fallbacks) and fingerprint-match the scalar outcome point for point
    — a kernel that is fast but wrong never produces a number.
    """
    from repro.cache import clear_memo, fingerprint
    from repro.core.sweeps import run_sweep

    spec = sweep_cold_grid()
    points = spec.points()
    n_points = len(points)

    clear_memo()
    batched = run_sweep(spec, n_jobs=1, batch="auto")
    if batched.batch_points != n_points:
        raise ConfigError(
            f"batch kernel took {batched.batch_points}/{n_points} points "
            f"of the cold grid; fallbacks: "
            f"{[d for d in batched.dispatch if d != 'batch'][:3]}"
        )
    clear_memo()
    scalar = run_sweep(spec, n_jobs=1, batch=False)
    for point, rb, rs in zip(points, batched.results, scalar.results):
        if fingerprint(rb.to_dict()) != fingerprint(rs.to_dict()):
            raise ConfigError(
                f"batch kernel diverges from the scalar engine at "
                f"{point.workload.name}/{point.arch.name}/{point.scale}"
            )

    def cold_batch():
        clear_memo()
        run_sweep(spec, n_jobs=1, batch="auto")

    def cold_scalar():
        clear_memo()
        run_sweep(spec, n_jobs=1, batch=False)

    measurements = [
        measure("sweep_cold_batch", cold_batch, n_points, repeats),
        measure("sweep_cold_scalar", cold_scalar, n_points, repeats),
    ]
    speedup = (
        measurements[0].samples_per_s / measurements[1].samples_per_s
        if measurements[1].samples_per_s > 0
        else math.inf
    )
    return measurements, speedup


def sweep_equivalence(n_jobs: int = 4):
    """(serial/uncached, parallel/warm-cache) outcomes of the Figure 21
    grid, for asserting the speedup never changes a number."""
    import shutil
    import tempfile

    from repro.cache import ResultCache, clear_memo
    from repro.core.sweeps import figure21_spec, run_sweep

    spec = figure21_spec()
    clear_memo()
    serial = run_sweep(spec, n_jobs=1)
    tmp = tempfile.mkdtemp(prefix="repro-sweep-equiv-")
    try:
        run_sweep(spec, n_jobs=n_jobs, cache=ResultCache(tmp))
        cached = run_sweep(spec, n_jobs=n_jobs, cache=ResultCache(tmp))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return serial, cached


# -- the prep suite ----------------------------------------------------------


def _bench_jpeg_blobs(size: int, batch: int, quality: int = 75) -> List[bytes]:
    """Photo-like JPEG payloads for the prep benchmarks (batch-encoded —
    byte-identical to per-image encode, just faster to set up)."""
    from repro.dataprep import jpeg

    images = [bench_image(size, size, seed=300 + i) for i in range(batch)]
    return jpeg.encode_batch(images, quality=quality)


def prep_suite(
    size: int = 256, batch: int = 32, repeats: int = 3
) -> List[Measurement]:
    """Throughput of the data-preparation pipelines, samples/s.

    * ``image_prep_single_{size}`` — the kept per-sample path
      (``run_batch_reference``), one fast-codec ``run`` per image;
    * ``image_prep_batch{batch}_{size}`` — the per-op vectorized
      ``run_batch_vectorized(plan=False)`` path on the same payloads;
    * ``image_prep_plan{batch}_{size}`` — the compiled-plan path
      (``plan=True``, the default route the engine takes), arena warm;
    * ``audio_prep_batch{batch}`` — the batched audio pipeline on a
      stack of equal-length utterances (planned path).

    All paths are bit-identical; the measurements exist so CI notices
    when one of them loses its throughput.
    """
    from repro.dataprep.ops_audio import audio_pipeline
    from repro.dataprep.ops_image import image_pipeline
    from repro.dataprep.pipeline import spawn_rngs

    crop = max(1, size - 32)
    pipe = image_pipeline(out_height=crop, out_width=crop)
    blobs = _bench_jpeg_blobs(size, batch)
    single = max(4, batch // 4)

    def run_single():
        rngs = spawn_rngs(np.random.default_rng(0), single)
        pipe.run_batch_reference(blobs[:single], rngs)

    def run_batched():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        pipe.run_batch_vectorized(blobs, rngs, plan=False)

    def run_planned():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        pipe.run_batch_vectorized(blobs, rngs)

    run_planned()  # compile the plan outside the timed region

    apipe = audio_pipeline()
    pcm = (
        np.clip(
            np.random.default_rng(5).normal(0, 0.2, (batch, 16_000)), -1, 1
        )
        * 32767
    ).astype(np.int16)

    def run_audio():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        apipe.run_batch_vectorized(pcm, rngs)

    return [
        measure(f"image_prep_single_{size}", run_single, single, repeats),
        measure(f"image_prep_batch{batch}_{size}", run_batched, batch, repeats),
        measure(f"image_prep_plan{batch}_{size}", run_planned, batch, repeats),
        # The audio batch is ~25 ms, so scheduler jitter dominates a
        # small best-of; extra repeats are cheap and stabilize the min.
        measure(
            f"audio_prep_batch{batch}", run_audio, batch, max(repeats, 12)
        ),
    ]


def prep_reference_speedup(
    size: int = 256,
    batch: int = 256,
    reference_samples: int = 8,
    repeats: int = 3,
) -> float:
    """Batched-path / per-sample-reference throughput ratio for the
    image pipeline on a ``batch``×``size``×``size`` JPEG batch.

    The reference is the kept executable spec end to end: a per-sample
    ``run`` loop with the symbol-at-a-time JPEG entropy decoder
    (``fast=False`` — the same baseline the codec benchmark measures
    against, PR 1 discipline).  It is timed on ``reference_samples``
    images and scaled linearly — it is a strict per-sample loop, so its
    cost is linear by construction — because timing all ``batch`` images
    through it would take minutes.  Bit-identity of the two paths is
    asserted on the subset while we're at it.
    """
    from repro.dataprep.ops_image import image_pipeline
    from repro.dataprep.pipeline import spawn_rngs

    crop = max(1, size - 32)
    fast_pipe = image_pipeline(out_height=crop, out_width=crop)
    ref_pipe = image_pipeline(
        out_height=crop, out_width=crop, fast_decode=False
    )
    blobs = _bench_jpeg_blobs(size, batch)
    reference_samples = min(reference_samples, batch)

    rngs = spawn_rngs(np.random.default_rng(0), batch)
    batched = fast_pipe.run_batch_vectorized(blobs, rngs)
    rngs = spawn_rngs(np.random.default_rng(0), batch)
    reference = ref_pipe.run_batch_reference(
        blobs[:reference_samples], rngs[:reference_samples]
    )
    for i, ref_out in enumerate(reference):
        if not np.array_equal(ref_out, batched[i]):
            raise ConfigError(
                f"batched prep output differs from the reference at {i}"
            )

    def run_reference():
        rngs = spawn_rngs(np.random.default_rng(0), reference_samples)
        ref_pipe.run_batch_reference(blobs[:reference_samples], rngs)

    def run_batched():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        fast_pipe.run_batch_vectorized(blobs, rngs)

    ref_s = best_of(run_reference, repeats=repeats) / reference_samples
    batched_s = best_of(run_batched, repeats=repeats) / batch
    if batched_s <= 0:
        return math.inf
    return ref_s / batched_s


def prep_plan_speedup(
    size: int = 256,
    batch: int = 256,
    reference_samples: int = 4,
    repeats: int = 3,
) -> float:
    """Compiled-plan / per-op-vectorized throughput ratio for the image
    pipeline on a ``batch``×``size``×``size`` JPEG batch.

    The baseline here is the per-op fast path itself
    (``run_batch_vectorized(plan=False)``), not the per-sample
    reference — this ratio isolates what whole-pipeline fusion, hoisted
    invariants and the pooled arena buy on top of already-vectorized
    ops.  Bit-identity of the planned output against both the per-op
    path (full batch) and the per-sample reference (a subset) is
    asserted **before** any timing; a plan that is fast but wrong never
    produces a number.

    Shared JPEG entropy decode dominates both paths on this pipeline
    (Amdahl), so the ratio is modest (~1.3x warm) and converges only
    once the plan's arena pages are resident — the per-op path refaults
    its large temporaries every call, the plan never does.  Both paths
    get one untimed warm-up round, then are timed interleaved.
    """
    from repro.dataprep.ops_image import image_pipeline
    from repro.dataprep.pipeline import spawn_rngs
    from repro.dataprep.plan import compile_plan, geometry_for_batch

    crop = max(1, size - 32)
    pipe = image_pipeline(out_height=crop, out_width=crop)
    blobs = _bench_jpeg_blobs(size, batch)
    plan = compile_plan(pipe, geometry_for_batch(pipe, blobs))
    reference_samples = min(reference_samples, batch)

    rngs = spawn_rngs(np.random.default_rng(0), batch)
    planned = plan.execute(blobs, rngs).copy()
    rngs = spawn_rngs(np.random.default_rng(0), batch)
    per_op = pipe.run_batch_vectorized(blobs, rngs, plan=False)
    if not np.array_equal(planned, per_op):
        raise ConfigError(
            "planned prep output differs from the per-op vectorized path"
        )
    rngs = spawn_rngs(np.random.default_rng(0), batch)
    reference = pipe.run_batch_reference(
        blobs[:reference_samples], rngs[:reference_samples]
    )
    for i, ref_out in enumerate(reference):
        if not np.array_equal(ref_out, planned[i]):
            raise ConfigError(
                f"planned prep output differs from the reference at {i}"
            )

    def run_planned():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        plan.execute(blobs, rngs)

    def run_per_op():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        pipe.run_batch_vectorized(blobs, rngs, plan=False)

    return _interleaved_ratio(run_planned, run_per_op, repeats)


def _interleaved_ratio(
    fast: Callable[[], object], slow: Callable[[], object], repeats: int
) -> float:
    """``min(slow) / min(fast)`` timed interleaved so slow drift of the
    host perturbs both minima equally — the ratio is the measurement,
    not either absolute time.  Two untimed warm-up rounds of both paths
    first (arena pages and allocator pools need a few calls to settle),
    then one repeat of each per round with the order alternating per
    round so within-round drift cannot systematically favor one side."""
    for _ in range(2):
        fast()
        slow()
    fast_s = slow_s = math.inf
    for i in range(max(1, repeats)):
        pair = (fast, slow) if i % 2 == 0 else (slow, fast)
        halves = {}
        for fn in pair:
            t0 = time.perf_counter()
            fn()
            halves[fn] = time.perf_counter() - t0
        fast_s = min(fast_s, halves[fast])
        slow_s = min(slow_s, halves[slow])
    if fast_s <= 0:
        return math.inf
    return slow_s / fast_s


def audio_plan_speedup(
    batch: int = 32,
    n_samples: int = 16_000,
    reference_samples: int = 4,
    repeats: int = 10,
) -> float:
    """Compiled-plan / per-op-vectorized throughput ratio for the audio
    pipeline on a ``batch``-utterance int16 PCM stack.

    The audio chain has no entropy-decode stage, so this is where the
    arena shows its full effect — but the effect is allocator-state
    dependent: in a fresh process (a dedicated audio prep worker at
    startup) the per-op path's large float64 temporaries are mmap-backed
    and refault every batch, and the plan measures ~1.6x; in a process
    that has already churned big allocations, glibc's dynamic mmap
    threshold makes those temporaries cheap heap reuse and the two paths
    converge (~1.0x).  The plan's durable win in the churned regime is
    *predictability* — zero steady-state allocation, no page-fault
    jitter — which :func:`assert_zero_alloc` guards directly.  Callers
    gating on a fresh-process floor must measure before other large
    work.  Identity against the per-op path and the per-sample
    reference is asserted before timing.
    """
    from repro.dataprep.ops_audio import audio_pipeline
    from repro.dataprep.pipeline import spawn_rngs
    from repro.dataprep.plan import compile_plan, geometry_for_batch

    pipe = audio_pipeline()
    pcm = (
        np.clip(
            np.random.default_rng(5).normal(0, 0.2, (batch, n_samples)),
            -1,
            1,
        )
        * 32767
    ).astype(np.int16)
    plan = compile_plan(pipe, geometry_for_batch(pipe, pcm))
    reference_samples = min(reference_samples, batch)

    rngs = spawn_rngs(np.random.default_rng(0), batch)
    planned = plan.execute(pcm, rngs).copy()
    rngs = spawn_rngs(np.random.default_rng(0), batch)
    per_op = pipe.run_batch_vectorized(pcm, rngs, plan=False)
    if not np.array_equal(planned, per_op):
        raise ConfigError(
            "planned audio output differs from the per-op vectorized path"
        )
    rngs = spawn_rngs(np.random.default_rng(0), batch)
    reference = pipe.run_batch_reference(
        pcm[:reference_samples], rngs[:reference_samples]
    )
    for i, ref_out in enumerate(reference):
        if not np.array_equal(ref_out, planned[i]):
            raise ConfigError(
                f"planned audio output differs from the reference at {i}"
            )

    def run_planned():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        plan.execute(pcm, rngs)

    def run_per_op():
        rngs = spawn_rngs(np.random.default_rng(0), batch)
        pipe.run_batch_vectorized(pcm, rngs, plan=False)

    return _interleaved_ratio(run_planned, run_per_op, repeats)


def prep_equivalence(
    size: int = 64, num_samples: int = 20, batch_size: int = 8, workers: int = 2
):
    """(serial, parallel) engine outputs over the same shards, for
    asserting the worker pool never changes a bit."""
    from repro.dataprep.engine import run_engine
    from repro.dataprep.ops_image import image_pipeline
    from repro.datasets.imagenet import SyntheticImageDataset

    dataset = SyntheticImageDataset(
        num_items=num_samples, height=size, width=size, seed=21
    )
    pipe = image_pipeline(out_height=size - 16, out_width=size - 16)
    out_spec = pipe.output_spec(dataset.measured_spec())
    sample_nbytes = int(np.prod(out_spec.shape)) * 4
    loader = dataset.shard_loader()
    serial = run_engine(
        pipe, loader, num_samples, batch_size, seed=13, num_workers=0
    )
    parallel = run_engine(
        pipe,
        loader,
        num_samples,
        batch_size,
        seed=13,
        num_workers=workers,
        sample_nbytes=sample_nbytes,
    )
    return serial, parallel


def reference_decode_speedup(size: int = 256, repeats: int = 10) -> float:
    """Fast-path / reference-path JPEG decode throughput ratio.

    The two paths are timed interleaved (one repeat of each per round) so
    slow drift of the host perturbs both minima equally.
    """
    from repro.dataprep.jpeg.codec import JpegCodec

    img = bench_image(size, size)
    codec = JpegCodec(quality=75)
    blob = codec.encode(img)
    fast = ref = math.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        codec.decode(blob, fast=True)
        fast = min(fast, time.perf_counter() - t0)
        t0 = time.perf_counter()
        codec.decode(blob, fast=False)
        ref = min(ref, time.perf_counter() - t0)
    return ref / fast
