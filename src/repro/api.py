"""The supported public entry surface: one call, any engine.

Historically each engine had its own entrypoint with its own signature
(:func:`repro.core.analytical.simulate`,
:func:`repro.core.des.simulate_des`, and the fluid PCIe layer had none
at all).  This module puts a single facade in front of all of them::

    from repro import api

    result = api.simulate("Resnet-50", "trainbox", 256)           # analytical
    des    = api.simulate("Resnet-50", "trainbox", 256, engine="des")
    flow   = api.simulate("Resnet-50", "trainbox", 16, engine="flow")

Every engine returns a :class:`~repro.core.results.SimulationOutcome`
(same fields, same derived properties), and the facade threads the
observability layer (``trace=``, ``metrics=``) and the persistent result
cache (``cache=``) uniformly — callers never touch three divergent
signatures again.

Engines are pluggable through the :class:`Engine` protocol; the built-in
registry covers ``analytical``, ``des`` and ``flow``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Protocol, Union, runtime_checkable

from repro import obs
from repro.cache import ResultCache
from repro.core.analytical import TrainingScenario, simulate as _simulate_analytical
from repro.core.config import ArchitectureConfig, HardwareConfig, PrepDevice
from repro.core.des import simulate_des
from repro.core.flowengine import simulate_flow
from repro.core.results import SimulationOutcome
from repro.core.sweeps import (
    SweepPoint,
    SweepSpec,
    cache_key,
    run_sweep,
    _result_from_dict,
)
from repro.errors import ConfigError
from repro.workloads.registry import Workload, get_workload

__all__ = [
    "ARCH_BUILDERS",
    "Engine",
    "ENGINE_NAMES",
    "get_engine",
    "price_fault_schedule",
    "resolve_arch",
    "resolve_workload",
    "simulate",
    "sweep",
    "trace_iteration_time",
]

#: Short architecture aliases accepted anywhere the facade (or the CLI)
#: takes an architecture.
ARCH_BUILDERS = {
    "baseline": ArchitectureConfig.baseline,
    "acc": ArchitectureConfig.baseline_acc,
    "acc-gpu": lambda: ArchitectureConfig.baseline_acc(PrepDevice.GPU),
    "p2p": ArchitectureConfig.baseline_acc_p2p,
    "gen4": ArchitectureConfig.baseline_acc_p2p_gen4,
    "trainbox": ArchitectureConfig.trainbox,
    "trainbox-no-pool": lambda: ArchitectureConfig.trainbox(prep_pool=False),
}


def resolve_workload(workload: Union[str, Workload]) -> Workload:
    """A Table I workload, by name or already-resolved."""
    if isinstance(workload, Workload):
        return workload
    return get_workload(workload)


def resolve_arch(arch: Union[str, ArchitectureConfig]) -> ArchitectureConfig:
    """An architecture config, by alias or already-resolved."""
    if isinstance(arch, ArchitectureConfig):
        return arch
    try:
        return ARCH_BUILDERS[arch]()
    except KeyError:
        raise ConfigError(
            f"unknown architecture {arch!r}; choose from "
            f"{sorted(ARCH_BUILDERS)}"
        ) from None


@runtime_checkable
class Engine(Protocol):
    """What the facade requires of a simulation engine.

    ``run`` evaluates one :class:`~repro.core.sweeps.SweepPoint` and
    returns a :class:`~repro.core.results.SimulationOutcome`.  Engines
    read the active tracer/metrics from :mod:`repro.obs` — the facade
    installs them before calling.
    """

    name: str

    def run(self, point: SweepPoint) -> SimulationOutcome:
        ...


def _scenario(point: SweepPoint) -> TrainingScenario:
    return TrainingScenario(
        workload=point.workload,
        arch=point.arch,
        n_accelerators=point.scale,
        batch_size=point.batch_size,
        hw=point.hw,
        accelerator=point.accelerator,
        fabric_bandwidth=point.fabric_bandwidth,
        pool_size=point.pool_size,
    )


class AnalyticalEngine:
    """Steady-state overlap law (``min(prep, consume)``)."""

    name = "analytical"

    def run(self, point: SweepPoint) -> SimulationOutcome:
        return _simulate_analytical(_scenario(point))


class DesEngine:
    """Batch-level discrete-event simulation of the pipeline."""

    name = "des"

    def run(self, point: SweepPoint) -> SimulationOutcome:
        # A live tracer wants the event stream; recording is only paid
        # when asked for.
        record = obs.current_tracer() is not None
        return simulate_des(
            _scenario(point),
            iterations=point.des_iterations,
            buffer_batches=point.des_buffer_batches,
            record_trace=record,
        )


class FlowEngine:
    """Max-min fair fluid simulation of the PCIe transfer set."""

    name = "flow"

    def run(self, point: SweepPoint) -> SimulationOutcome:
        return simulate_flow(_scenario(point))


_ENGINES: Dict[str, Engine] = {
    e.name: e for e in (AnalyticalEngine(), DesEngine(), FlowEngine())
}

#: Engine names the facade accepts.
ENGINE_NAMES = tuple(_ENGINES)


def get_engine(name: str) -> Engine:
    try:
        return _ENGINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; choose from {ENGINE_NAMES}"
        ) from None


def _as_cache(cache) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(Path(cache))


def simulate(
    workload: Union[str, Workload],
    arch: Union[str, ArchitectureConfig],
    scale: int,
    *,
    engine: str = "analytical",
    batch_size: Optional[int] = None,
    hw: Optional[HardwareConfig] = None,
    pool_size: Optional[int] = None,
    accelerator: str = "tpu",
    fabric_bandwidth: Optional[float] = None,
    des_iterations: int = 60,
    des_buffer_batches: int = 4,
    trace: Optional[obs.Tracer] = None,
    metrics: Optional[obs.MetricsRegistry] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> SimulationOutcome:
    """Simulate one ``workload × arch × scale`` scenario on any engine.

    ``trace``/``metrics`` install the given instruments for the duration
    of the call; ``cache`` (a :class:`~repro.cache.ResultCache` or a
    directory path) serves the point content-addressed when possible.
    Traced runs always recompute — a cached payload has no event stream
    to replay — but still refresh the cache with what they computed.
    """
    eng = get_engine(engine)
    point = SweepPoint(
        workload=resolve_workload(workload),
        arch=resolve_arch(arch),
        scale=scale,
        engine=engine,
        batch_size=batch_size,
        hw=hw,
        pool_size=pool_size,
        accelerator=accelerator,
        fabric_bandwidth=fabric_bandwidth,
        des_iterations=des_iterations,
        des_buffer_batches=des_buffer_batches,
    )
    store = _as_cache(cache)
    with obs.session(tracer=trace, metrics=metrics):
        with obs.span(
            "api.simulate", cat="api",
            engine=engine, workload=point.workload.name, scale=scale,
        ):
            key = cache_key(point) if store is not None else None
            if store is not None and trace is None:
                payload = store.get(key)
                if payload is not None:
                    return _result_from_dict(engine, payload)
            result = eng.run(point)
            if store is not None:
                store.put(key, result.to_dict())
    return result


def sweep(
    spec: Union[SweepSpec, list],
    *,
    n_jobs: int = 1,
    cache: Union[None, str, Path, ResultCache] = None,
    metrics: Union[None, bool, obs.MetricsRegistry] = None,
    batch: Union[bool, str] = "auto",
):
    """Evaluate a grid through the facade (thin wrapper over
    :func:`repro.core.sweeps.run_sweep` with the facade's cache and
    metrics conveniences).  ``batch`` controls the vectorized kernel:
    ``"auto"`` (default) evaluates every expressible analytical point in
    structure-of-arrays passes, ``False`` forces per-point evaluation."""
    return run_sweep(
        spec,
        n_jobs=n_jobs,
        cache=_as_cache(cache),
        metrics=metrics,
        batch=batch,
    )


def price_fault_schedule(
    workload: Union[str, Workload],
    arch: Union[str, ArchitectureConfig],
    scale: int,
    schedule,
    horizon: float,
    *,
    engine: str = "analytical",
    batch_size: Optional[int] = None,
    hw: Optional[HardwareConfig] = None,
    pool_size: Optional[int] = None,
    des_iterations: int = 60,
    trace: Optional[obs.Tracer] = None,
    metrics: Optional[obs.MetricsRegistry] = None,
):
    """Price a :class:`~repro.core.faults.FaultSchedule` on any engine.

    Returns a :class:`~repro.core.faults.DegradedTimeline`: the horizon
    partitioned into constant-fault windows, each priced by the chosen
    engine on the degraded server — FPGA loss absorbed by the prep
    pool, SSD loss halving the box's read bandwidth after resharding,
    accelerator loss shrinking the job for its window.
    """
    from repro.core.des import simulate_des_schedule
    from repro.core.faults import price_schedule
    from repro.core.flowengine import simulate_flow_schedule
    from repro.core.server import build_server

    get_engine(engine)  # validate the name with the canonical error
    scenario = TrainingScenario(
        workload=resolve_workload(workload),
        arch=resolve_arch(arch),
        n_accelerators=scale,
        batch_size=batch_size,
        hw=hw,
        pool_size=pool_size,
    )
    with obs.session(tracer=trace, metrics=metrics):
        with obs.span(
            "api.price_fault_schedule", cat="api",
            engine=engine, workload=scenario.workload.name, scale=scale,
        ):
            if engine == "des":
                return simulate_des_schedule(
                    scenario, schedule, horizon, iterations=des_iterations
                )
            if engine == "flow":
                return simulate_flow_schedule(scenario, schedule, horizon)
            server = build_server(
                scenario.arch, scale, hw=scenario.hw or HardwareConfig(),
                pool_size=pool_size,
            )

            def runner(degraded):
                import dataclasses

                window = dataclasses.replace(
                    scenario, n_accelerators=degraded.n_accelerators
                )
                return _simulate_analytical(window, server=degraded)

            return price_schedule(server, schedule, horizon, runner)


def trace_iteration_time(tracer: obs.Tracer) -> float:
    """The per-iteration time a trace's ``iteration`` spans imply.

    ``repro trace`` reconciles this against ``result.iteration_time``;
    the two agree to well within 1% for every engine (a test pins it).
    """
    return obs.steady_iteration_time(
        tracer.model_spans(cat=obs.ITERATION_CATEGORY)
    )
