"""The supported public entry surface: one call, any engine.

Historically each engine had its own entrypoint with its own signature
(:func:`repro.core.analytical.simulate`,
:func:`repro.core.des.simulate_des`, and the fluid PCIe layer had none
at all).  This module puts a single facade in front of all of them::

    from repro import api

    result = api.simulate("Resnet-50", "trainbox", 256)           # analytical
    des    = api.simulate("Resnet-50", "trainbox", 256, engine="des")
    flow   = api.simulate("Resnet-50", "trainbox", 16, engine="flow")

Every engine returns a :class:`~repro.core.results.SimulationOutcome`
(same fields, same derived properties), and the facade threads the
observability layer (``trace=``, ``metrics=``) and the persistent result
cache (``cache=``) uniformly — callers never touch three divergent
signatures again.

Engines are pluggable through the :class:`Engine` protocol; the built-in
registry covers ``analytical``, ``des`` and ``flow``.

Scenarios also exist as **versioned request objects** —
:class:`SimulationRequest`, :class:`SweepRequest` and
:class:`FaultScheduleRequest` (schema tag ``repro-request/1``) — frozen,
JSON-round-trippable, with a canonical content-hash ``fingerprint()``.
They are the wire schema of :mod:`repro.service`, and every facade entry
point accepts one in place of the legacy arguments::

    req = api.SimulationRequest("Resnet-50", "trainbox", 256, engine="des")
    result = api.simulate(req)          # same point, same result
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro import obs
from repro.cache import ResultCache, fingerprint as _fingerprint
from repro.core.analytical import TrainingScenario, simulate as _simulate_analytical
from repro.core.config import ArchitectureConfig, HardwareConfig, PrepDevice
from repro.core.des import simulate_des
from repro.core.flowengine import simulate_flow
from repro.core.results import SimulationOutcome
from repro.core.sweeps import (
    SweepPoint,
    SweepSpec,
    cache_key,
    run_sweep,
    _result_from_dict,
)
from repro.errors import ConfigError
from repro.workloads.registry import Workload, get_workload

__all__ = [
    "ARCH_BUILDERS",
    "Engine",
    "ENGINE_NAMES",
    "FaultScheduleRequest",
    "REQUEST_SCHEMA",
    "SimulationRequest",
    "SweepRequest",
    "get_engine",
    "price_fault_schedule",
    "request_from_dict",
    "resolve_arch",
    "resolve_workload",
    "simulate",
    "sweep",
    "trace_iteration_time",
]

#: Short architecture aliases accepted anywhere the facade (or the CLI)
#: takes an architecture.
ARCH_BUILDERS = {
    "baseline": ArchitectureConfig.baseline,
    "acc": ArchitectureConfig.baseline_acc,
    "acc-gpu": lambda: ArchitectureConfig.baseline_acc(PrepDevice.GPU),
    "p2p": ArchitectureConfig.baseline_acc_p2p,
    "gen4": ArchitectureConfig.baseline_acc_p2p_gen4,
    "trainbox": ArchitectureConfig.trainbox,
    "trainbox-no-pool": lambda: ArchitectureConfig.trainbox(prep_pool=False),
}


def resolve_workload(workload: Union[str, Workload]) -> Workload:
    """A Table I workload, by name or already-resolved."""
    if isinstance(workload, Workload):
        return workload
    return get_workload(workload)


def resolve_arch(arch: Union[str, ArchitectureConfig]) -> ArchitectureConfig:
    """An architecture config, by alias or already-resolved."""
    if isinstance(arch, ArchitectureConfig):
        return arch
    try:
        return ARCH_BUILDERS[arch]()
    except KeyError:
        raise ConfigError(
            f"unknown architecture {arch!r}; choose from "
            f"{sorted(ARCH_BUILDERS)}"
        ) from None


# -- versioned request objects (the service wire schema) ---------------------

#: Version tag stamped into every serialized request.  Bump when the
#: request schema changes incompatibly; :func:`request_from_dict`
#: rejects any other tag.
REQUEST_SCHEMA = "repro-request/1"


def arch_alias(arch: Union[str, ArchitectureConfig]) -> str:
    """The canonical :data:`ARCH_BUILDERS` alias for an architecture.

    Requests are wire objects, so they reference architectures by alias
    rather than by value; a config that no alias reproduces is not
    wire-representable and raises :class:`ConfigError`.
    """
    if isinstance(arch, str):
        resolve_arch(arch)  # validate, canonical error
        return arch
    for alias, builder in ARCH_BUILDERS.items():
        if builder() == arch:
            return alias
    raise ConfigError(
        f"architecture {arch.name!r} matches no registered alias; "
        f"requests reference architectures by alias "
        f"({sorted(ARCH_BUILDERS)})"
    )


def _workload_name(workload: Union[str, Workload]) -> str:
    if isinstance(workload, Workload):
        return workload.name
    get_workload(workload)  # validate, canonical error
    return workload


class _RequestBase:
    """Shared wire behaviour of the three request kinds.

    Subclasses are frozen dataclasses whose fields are all
    JSON-representable (strings, numbers, tuples); ``to_dict`` /
    ``from_dict`` round-trip them under the :data:`REQUEST_SCHEMA`
    version tag, and ``fingerprint`` is a canonical content hash built
    from the same :mod:`repro.cache` fingerprints the result cache keys
    on — two requests that denote the same computation hash identically
    whatever dict ordering or process produced them.
    """

    kind: ClassVar[str]

    def to_dict(self) -> Dict:
        body = {"v": REQUEST_SCHEMA, "kind": self.kind}
        for f in fields(self):
            body[f.name] = getattr(self, f.name)
        return body

    @classmethod
    def from_dict(cls, data: Dict) -> "_RequestBase":
        if not isinstance(data, dict):
            raise ConfigError(f"request must be a dict, got {type(data).__name__}")
        version = data.get("v")
        if version != REQUEST_SCHEMA:
            raise ConfigError(
                f"unsupported request schema {version!r}; this build "
                f"speaks {REQUEST_SCHEMA}"
            )
        kind = data.get("kind")
        if kind != cls.kind:
            raise ConfigError(
                f"request kind {kind!r} does not match {cls.kind!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known - {"v", "kind"}
        if unknown:
            raise ConfigError(
                f"unknown {cls.kind} request fields: {sorted(unknown)}"
            )
        kwargs = {k: data[k] for k in known & set(data)}
        try:
            return cls(**kwargs)
        except TypeError as exc:  # e.g. a missing required field
            raise ConfigError(f"bad {cls.kind} request: {exc}") from None


def _as_tuple(value, caster) -> tuple:
    if isinstance(value, (str, bytes)):
        raise ConfigError(f"expected a sequence, got {value!r}")
    try:
        return tuple(caster(v) for v in value)
    except TypeError:
        raise ConfigError(f"expected a sequence, got {value!r}") from None


def _positive_int(name: str, value, optional: bool = False):
    """Wire-field validator: a positive JSON integer (bools excluded).

    Requests cross a trust boundary, so field types are checked at
    construction — a bad value must surface as :class:`ConfigError`
    (the service's ``bad-request``), never as a ``TypeError`` deep in
    ``fingerprint()`` or an engine.
    """
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")
    return value


def _positive_real(name: str, value, optional: bool = False):
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or value <= 0:
        raise ConfigError(f"{name} must be positive and finite, got {value!r}")
    return value


@dataclass(frozen=True)
class SimulationRequest(_RequestBase):
    """One ``workload × arch × scale`` scenario, as a wire object.

    ``workload`` is a Table I name and ``arch`` an
    :data:`ARCH_BUILDERS` alias — requests denote configurations by
    name, never by value, so any process deserializing one resolves the
    identical scenario.
    """

    workload: str
    arch: str
    scale: int
    engine: str = "analytical"
    batch_size: Optional[int] = None
    pool_size: Optional[int] = None
    accelerator: str = "tpu"
    fabric_bandwidth: Optional[float] = None
    des_iterations: int = 60
    des_buffer_batches: int = 4

    kind: ClassVar[str] = "simulate"

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", _workload_name(self.workload))
        object.__setattr__(self, "arch", arch_alias(self.arch))
        get_engine(self.engine)
        _positive_int("scale", self.scale)
        _positive_int("batch_size", self.batch_size, optional=True)
        _positive_int("pool_size", self.pool_size, optional=True)
        _positive_real("fabric_bandwidth", self.fabric_bandwidth, optional=True)
        _positive_int("des_iterations", self.des_iterations)
        _positive_int("des_buffer_batches", self.des_buffer_batches)

    def resolve(self) -> SweepPoint:
        """The fully-resolved grid point this request denotes."""
        return SweepPoint(
            workload=resolve_workload(self.workload),
            arch=resolve_arch(self.arch),
            scale=self.scale,
            engine=self.engine,
            batch_size=self.batch_size,
            pool_size=self.pool_size,
            accelerator=self.accelerator,
            fabric_bandwidth=self.fabric_bandwidth,
            des_iterations=self.des_iterations,
            des_buffer_batches=self.des_buffer_batches,
        )

    def points(self) -> list:
        """The evaluation points this request decomposes into (the
        service's cross-request batcher stitches these into shared
        kernel dispatches)."""
        return [self.resolve()]

    def fingerprint(self) -> str:
        return _fingerprint(REQUEST_SCHEMA, self.kind, cache_key(self.resolve()))


@dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """A whole grid (workloads × archs × scales) as one wire object."""

    workloads: Tuple[str, ...]
    archs: Tuple[str, ...]
    scales: Tuple[int, ...]
    engine: str = "analytical"
    batch_size: Optional[int] = None
    pool_size: Optional[int] = None
    accelerator: str = "tpu"
    fabric_bandwidth: Optional[float] = None
    des_iterations: int = 60
    des_buffer_batches: int = 4

    kind: ClassVar[str] = "sweep"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workloads", _as_tuple(self.workloads, _workload_name)
        )
        object.__setattr__(self, "archs", _as_tuple(self.archs, arch_alias))
        object.__setattr__(
            self,
            "scales",
            _as_tuple(self.scales, lambda s: _positive_int("scale", s)),
        )
        if not self.workloads or not self.archs or not self.scales:
            raise ConfigError("sweep request axes must be non-empty")
        get_engine(self.engine)
        _positive_int("batch_size", self.batch_size, optional=True)
        _positive_int("pool_size", self.pool_size, optional=True)
        _positive_real("fabric_bandwidth", self.fabric_bandwidth, optional=True)
        _positive_int("des_iterations", self.des_iterations)
        _positive_int("des_buffer_batches", self.des_buffer_batches)

    def to_dict(self) -> Dict:
        body = super().to_dict()
        body["workloads"] = list(self.workloads)
        body["archs"] = list(self.archs)
        body["scales"] = list(self.scales)
        return body

    def resolve(self) -> SweepSpec:
        return SweepSpec(
            workloads=tuple(resolve_workload(w) for w in self.workloads),
            archs=tuple(resolve_arch(a) for a in self.archs),
            scales=self.scales,
            engine=self.engine,
            batch_size=self.batch_size,
            pool_size=self.pool_size,
            accelerator=self.accelerator,
            fabric_bandwidth=self.fabric_bandwidth,
            des_iterations=self.des_iterations,
            des_buffer_batches=self.des_buffer_batches,
        )

    def points(self) -> list:
        """The grid's evaluation points, in the deterministic
        workload-major order the response's ``results`` list follows."""
        return self.resolve().points()

    def fingerprint(self) -> str:
        # Reuses the per-point result-cache keys, so two sweep requests
        # coalesce exactly when they denote the same point set.
        keys = [cache_key(p) for p in self.points()]
        return _fingerprint(REQUEST_SCHEMA, self.kind, keys)


@dataclass(frozen=True)
class FaultScheduleRequest(_RequestBase):
    """A fault-schedule pricing run as a wire object.

    ``events`` are ``(device_id, fail_time, recover_time)`` triples;
    ``recover_time`` ``None`` means the device never comes back (the
    JSON-safe spelling of ``inf``).
    """

    workload: str
    arch: str
    scale: int
    events: Tuple[Tuple[str, float, Optional[float]], ...]
    horizon: float
    engine: str = "analytical"
    batch_size: Optional[int] = None
    pool_size: Optional[int] = None
    des_iterations: int = 60

    kind: ClassVar[str] = "price_fault_schedule"

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", _workload_name(self.workload))
        object.__setattr__(self, "arch", arch_alias(self.arch))
        get_engine(self.engine)
        _positive_int("scale", self.scale)
        _positive_int("batch_size", self.batch_size, optional=True)
        _positive_int("pool_size", self.pool_size, optional=True)
        _positive_int("des_iterations", self.des_iterations)
        events = []
        try:
            for event in self.events:
                device, fail_t, recover_t = event
                recover = None if recover_t is None else float(recover_t)
                if recover is not None and math.isinf(recover):
                    recover = None
                events.append((str(device), float(fail_t), recover))
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"events must be (device, fail_time, recover_time) "
                f"triples: {exc}"
            ) from None
        object.__setattr__(self, "events", tuple(events))
        _positive_real("horizon", self.horizon)

    def to_dict(self) -> Dict:
        body = super().to_dict()
        body["events"] = [list(e) for e in self.events]
        return body

    def resolve(self):
        """The :class:`~repro.core.faults.FaultSchedule` this denotes."""
        from repro.core.faults import FaultEvent, FaultSchedule

        return FaultSchedule(
            tuple(
                FaultEvent(
                    device,
                    fail_t,
                    math.inf if recover is None else recover,
                )
                for device, fail_t, recover in self.events
            )
        )

    def fingerprint(self) -> str:
        point = SweepPoint(
            workload=resolve_workload(self.workload),
            arch=resolve_arch(self.arch),
            scale=self.scale,
            engine=self.engine,
            batch_size=self.batch_size,
            pool_size=self.pool_size,
            des_iterations=self.des_iterations,
        )
        return _fingerprint(
            REQUEST_SCHEMA,
            self.kind,
            cache_key(point),
            list(self.events),
            self.horizon,
        )


_REQUEST_KINDS = {
    cls.kind: cls
    for cls in (SimulationRequest, SweepRequest, FaultScheduleRequest)
}


def request_from_dict(data: Dict) -> _RequestBase:
    """Deserialize any request kind (the service's single entry point).

    Validates the :data:`REQUEST_SCHEMA` version tag and dispatches on
    ``kind``; field order in ``data`` never matters (a test pins
    fingerprint stability across orderings and processes).
    """
    if not isinstance(data, dict):
        raise ConfigError(f"request must be a dict, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        cls = _REQUEST_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown request kind {kind!r}; choose from "
            f"{sorted(_REQUEST_KINDS)}"
        ) from None
    return cls.from_dict(data)


@runtime_checkable
class Engine(Protocol):
    """What the facade requires of a simulation engine.

    ``run`` evaluates one :class:`~repro.core.sweeps.SweepPoint` and
    returns a :class:`~repro.core.results.SimulationOutcome`.  Engines
    read the active tracer/metrics from :mod:`repro.obs` — the facade
    installs them before calling.
    """

    name: str

    def run(self, point: SweepPoint) -> SimulationOutcome:
        ...


def _scenario(point: SweepPoint) -> TrainingScenario:
    return TrainingScenario(
        workload=point.workload,
        arch=point.arch,
        n_accelerators=point.scale,
        batch_size=point.batch_size,
        hw=point.hw,
        accelerator=point.accelerator,
        fabric_bandwidth=point.fabric_bandwidth,
        pool_size=point.pool_size,
    )


class AnalyticalEngine:
    """Steady-state overlap law (``min(prep, consume)``)."""

    name = "analytical"

    def run(self, point: SweepPoint) -> SimulationOutcome:
        return _simulate_analytical(_scenario(point))


class DesEngine:
    """Batch-level discrete-event simulation of the pipeline."""

    name = "des"

    def run(self, point: SweepPoint) -> SimulationOutcome:
        # A live tracer wants the event stream; recording is only paid
        # when asked for.
        record = obs.current_tracer() is not None
        return simulate_des(
            _scenario(point),
            iterations=point.des_iterations,
            buffer_batches=point.des_buffer_batches,
            record_trace=record,
        )


class FlowEngine:
    """Max-min fair fluid simulation of the PCIe transfer set."""

    name = "flow"

    def run(self, point: SweepPoint) -> SimulationOutcome:
        return simulate_flow(_scenario(point))


_ENGINES: Dict[str, Engine] = {
    e.name: e for e in (AnalyticalEngine(), DesEngine(), FlowEngine())
}

#: Engine names the facade accepts.
ENGINE_NAMES = tuple(_ENGINES)


def get_engine(name: str) -> Engine:
    try:
        return _ENGINES[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; choose from {ENGINE_NAMES}"
        ) from None


def _as_cache(cache) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(Path(cache))


def _reject_request_overrides(kind: str, *overrides) -> None:
    """Raise when scenario keywords accompany a request object.

    A request object *is* the scenario; letting ``engine=`` or
    ``batch_size=`` ride along would be silently ignored, so any
    non-default value is a conflict (mirrors the workload/arch/scale
    positional check).  ``overrides`` are ``(name, value, default)``.
    """
    clash = [name for name, value, default in overrides if value != default]
    if clash:
        raise ConfigError(
            f"keyword(s) {', '.join(clash)} conflict with the {kind}; "
            f"set scenario parameters on the request itself"
        )


def simulate(
    workload: Union[str, Workload, SimulationRequest],
    arch: Union[None, str, ArchitectureConfig] = None,
    scale: Optional[int] = None,
    *,
    engine: str = "analytical",
    batch_size: Optional[int] = None,
    hw: Optional[HardwareConfig] = None,
    pool_size: Optional[int] = None,
    accelerator: str = "tpu",
    fabric_bandwidth: Optional[float] = None,
    des_iterations: int = 60,
    des_buffer_batches: int = 4,
    trace: Optional[obs.Tracer] = None,
    metrics: Optional[obs.MetricsRegistry] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> SimulationOutcome:
    """Simulate one ``workload × arch × scale`` scenario on any engine.

    Accepts either a :class:`SimulationRequest` as the sole scenario
    argument (the wire form the service speaks) or the legacy
    ``workload, arch, scale`` keywords — the two spellings resolve to
    the identical grid point.

    ``trace``/``metrics`` install the given instruments for the duration
    of the call; ``cache`` (a :class:`~repro.cache.ResultCache` or a
    directory path) serves the point content-addressed when possible.
    Traced runs always recompute — a cached payload has no event stream
    to replay — but still refresh the cache with what they computed.
    """
    if isinstance(workload, SimulationRequest):
        if arch is not None or scale is not None or hw is not None:
            raise ConfigError(
                "pass either a SimulationRequest or workload/arch/scale "
                "keywords, not both"
            )
        _reject_request_overrides(
            "SimulationRequest",
            ("engine", engine, "analytical"),
            ("batch_size", batch_size, None),
            ("pool_size", pool_size, None),
            ("accelerator", accelerator, "tpu"),
            ("fabric_bandwidth", fabric_bandwidth, None),
            ("des_iterations", des_iterations, 60),
            ("des_buffer_batches", des_buffer_batches, 4),
        )
        point = workload.resolve()
    else:
        if arch is None or scale is None:
            raise ConfigError("simulate needs workload, arch and scale")
        point = SweepPoint(
            workload=resolve_workload(workload),
            arch=resolve_arch(arch),
            scale=scale,
            engine=engine,
            batch_size=batch_size,
            hw=hw,
            pool_size=pool_size,
            accelerator=accelerator,
            fabric_bandwidth=fabric_bandwidth,
            des_iterations=des_iterations,
            des_buffer_batches=des_buffer_batches,
        )
    eng = get_engine(point.engine)
    store = _as_cache(cache)
    with obs.session(tracer=trace, metrics=metrics):
        with obs.span(
            "api.simulate", cat="api",
            engine=point.engine, workload=point.workload.name,
            scale=point.scale,
        ):
            key = cache_key(point) if store is not None else None
            if store is not None and trace is None:
                payload = store.get(key)
                if payload is not None:
                    return _result_from_dict(point.engine, payload)
            result = eng.run(point)
            if store is not None:
                store.put(key, result.to_dict())
    return result


def sweep(
    spec: Union[SweepSpec, SweepRequest, list],
    *,
    n_jobs: int = 1,
    cache: Union[None, str, Path, ResultCache] = None,
    metrics: Union[None, bool, obs.MetricsRegistry] = None,
    batch: Union[bool, str] = "auto",
):
    """Evaluate a grid through the facade (thin wrapper over
    :func:`repro.core.sweeps.run_sweep` with the facade's cache and
    metrics conveniences).  Accepts a :class:`SweepRequest` (the wire
    form), a :class:`~repro.core.sweeps.SweepSpec`, or an explicit point
    list.  ``batch`` controls the vectorized kernel: ``"auto"``
    (default) evaluates every expressible analytical point in
    structure-of-arrays passes, ``False`` forces per-point evaluation."""
    if isinstance(spec, SweepRequest):
        spec = spec.resolve()
    return run_sweep(
        spec,
        n_jobs=n_jobs,
        cache=_as_cache(cache),
        metrics=metrics,
        batch=batch,
    )


def price_fault_schedule(
    workload: Union[str, Workload, FaultScheduleRequest],
    arch: Union[None, str, ArchitectureConfig] = None,
    scale: Optional[int] = None,
    schedule=None,
    horizon: Optional[float] = None,
    *,
    engine: str = "analytical",
    batch_size: Optional[int] = None,
    hw: Optional[HardwareConfig] = None,
    pool_size: Optional[int] = None,
    des_iterations: int = 60,
    trace: Optional[obs.Tracer] = None,
    metrics: Optional[obs.MetricsRegistry] = None,
):
    """Price a :class:`~repro.core.faults.FaultSchedule` on any engine.

    Accepts either a :class:`FaultScheduleRequest` as the sole scenario
    argument (the wire form) or the legacy ``workload, arch, scale,
    schedule, horizon`` arguments.

    Returns a :class:`~repro.core.faults.DegradedTimeline`: the horizon
    partitioned into constant-fault windows, each priced by the chosen
    engine on the degraded server — FPGA loss absorbed by the prep
    pool, SSD loss halving the box's read bandwidth after resharding,
    accelerator loss shrinking the job for its window.
    """
    from repro.core.des import simulate_des_schedule
    from repro.core.faults import price_schedule
    from repro.core.flowengine import simulate_flow_schedule
    from repro.core.server import build_server

    if isinstance(workload, FaultScheduleRequest):
        if (
            arch is not None
            or scale is not None
            or schedule is not None
            or horizon is not None
            or hw is not None
        ):
            raise ConfigError(
                "pass either a FaultScheduleRequest or workload/arch/"
                "scale/schedule/horizon arguments, not both"
            )
        _reject_request_overrides(
            "FaultScheduleRequest",
            ("engine", engine, "analytical"),
            ("batch_size", batch_size, None),
            ("pool_size", pool_size, None),
            ("des_iterations", des_iterations, 60),
        )
        request = workload
        workload, arch, scale = request.workload, request.arch, request.scale
        schedule, horizon = request.resolve(), request.horizon
        engine = request.engine
        batch_size = request.batch_size
        pool_size = request.pool_size
        des_iterations = request.des_iterations
    elif arch is None or scale is None or schedule is None or horizon is None:
        raise ConfigError(
            "price_fault_schedule needs workload, arch, scale, schedule "
            "and horizon"
        )

    get_engine(engine)  # validate the name with the canonical error
    scenario = TrainingScenario(
        workload=resolve_workload(workload),
        arch=resolve_arch(arch),
        n_accelerators=scale,
        batch_size=batch_size,
        hw=hw,
        pool_size=pool_size,
    )
    with obs.session(tracer=trace, metrics=metrics):
        with obs.span(
            "api.price_fault_schedule", cat="api",
            engine=engine, workload=scenario.workload.name, scale=scale,
        ):
            if engine == "des":
                return simulate_des_schedule(
                    scenario, schedule, horizon, iterations=des_iterations
                )
            if engine == "flow":
                return simulate_flow_schedule(scenario, schedule, horizon)
            server = build_server(
                scenario.arch, scale, hw=scenario.hw or HardwareConfig(),
                pool_size=pool_size,
            )

            def runner(degraded):
                import dataclasses

                window = dataclasses.replace(
                    scenario, n_accelerators=degraded.n_accelerators
                )
                return _simulate_analytical(window, server=degraded)

            return price_schedule(server, schedule, horizon, runner)


def trace_iteration_time(tracer: obs.Tracer) -> float:
    """The per-iteration time a trace's ``iteration`` spans imply.

    ``repro trace`` reconciles this against ``result.iteration_time``;
    the two agree to well within 1% for every engine (a test pins it).
    """
    return obs.steady_iteration_time(
        tracer.model_spans(cat=obs.ITERATION_CATEGORY)
    )
