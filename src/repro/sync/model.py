"""Closed-form synchronization latency models.

All models follow the α–β convention: a step costs ``latency + bytes/bw``.
The accelerator interconnect bandwidth defaults to NVLink class — the
paper quotes DGX-2's fabric at 9.4× the general-purpose interconnect
(§II-C), i.e. ≈150 GB/s effective per direction per device.

Ring model (the paper's Figure 2b): a chunked ring all-reduce of an
``M``-byte gradient over ``n`` devices moves ``2·M·(n-1)/n`` bytes per
device and takes ``2·(n-1)`` chunk steps.  Normalizing to the latency at
``n = 2`` gives ``(n-1)/n · 2`` for the bandwidth term — saturating at
exactly 2× as ``n`` grows, which is the figure's curve.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro import units

#: Effective per-device accelerator-fabric bandwidth (NVLink class).
ACCELERATOR_LINK_BANDWIDTH = 150 * units.GB

#: Per-step fabric latency (switch traversal + protocol).  Small relative
#: to bandwidth terms so that the ring's normalized latency saturates
#: near 2×, as Figure 2b shows for NVLink-class fabrics.
DEFAULT_STEP_LATENCY = 2e-7

#: Chunk size of the paper's chunked ring (Figure 2b caption: 4 KB).
DEFAULT_CHUNK_BYTES = 4 * units.KIB


class SyncModel(abc.ABC):
    """Per-iteration synchronization time for a gradient of ``model_bytes``
    across ``n`` accelerators."""

    @abc.abstractmethod
    def time(self, n: int, model_bytes: float) -> float:
        """Seconds to synchronize once.  ``n = 1`` costs nothing."""

    def normalized_latency(self, n: int, model_bytes: float) -> float:
        """Latency normalized to the 2-accelerator case (Figure 2b y-axis)."""
        base = self.time(2, model_bytes)
        if base == 0:
            raise ConfigError("2-accelerator latency is zero; cannot normalize")
        return self.time(n, model_bytes) / base

    @staticmethod
    def _check(n: int, model_bytes: float) -> None:
        if n < 1:
            raise ConfigError(f"need at least one accelerator, got {n}")
        if model_bytes < 0:
            raise ConfigError(f"model_bytes must be >= 0, got {model_bytes}")


@dataclass
class RingSyncModel(SyncModel):
    """Chunked ring all-reduce: reduce-scatter then all-gather."""

    bandwidth: float = ACCELERATOR_LINK_BANDWIDTH
    step_latency: float = DEFAULT_STEP_LATENCY
    chunk_bytes: float = DEFAULT_CHUNK_BYTES

    def time(self, n: int, model_bytes: float) -> float:
        self._check(n, model_bytes)
        if n == 1 or model_bytes == 0:
            return 0.0
        # Each device sends M/n bytes per step, 2(n-1) steps.  Chunking
        # (4 KB in Figure 2b) exists to pipeline transfers across steps,
        # so the critical path pays the step latency once per step and
        # the bandwidth term is the classic 2·M·(n-1)/(n·B).
        bytes_per_step = model_bytes / n
        steps = 2 * (n - 1)
        bandwidth_term = steps * bytes_per_step / self.bandwidth
        latency_term = steps * self.step_latency
        return bandwidth_term + latency_term


@dataclass
class TreeSyncModel(SyncModel):
    """Binary-tree reduce + broadcast: 2·ceil(log2 n) full-gradient hops."""

    bandwidth: float = ACCELERATOR_LINK_BANDWIDTH
    step_latency: float = DEFAULT_STEP_LATENCY

    def time(self, n: int, model_bytes: float) -> float:
        self._check(n, model_bytes)
        if n == 1 or model_bytes == 0:
            return 0.0
        depth = math.ceil(math.log2(n))
        return 2 * depth * (model_bytes / self.bandwidth + self.step_latency)


@dataclass
class CentralSyncModel(SyncModel):
    """Parameter-server style: every device sends its gradient to one
    point and receives the aggregate — the non-scalable strategy the
    ring replaced (latency grows linearly with n)."""

    bandwidth: float = ACCELERATOR_LINK_BANDWIDTH
    step_latency: float = DEFAULT_STEP_LATENCY

    def time(self, n: int, model_bytes: float) -> float:
        self._check(n, model_bytes)
        if n == 1 or model_bytes == 0:
            return 0.0
        # The central node's link serializes (n-1) ingests and (n-1) sends.
        return 2 * (n - 1) * (model_bytes / self.bandwidth + self.step_latency)
