"""Functional binary-tree all-reduce (reduce + broadcast).

The tree strategy NCCL also implements (§II-B mentions tree-based
aggregation): gradients flow up a binary tree, summing at each internal
node, then the total is broadcast back down.  Latency scales with the
tree depth (2·ceil(log2 n) full-gradient hops — see
:class:`repro.sync.model.TreeSyncModel`), worse than the ring's
saturating 2× at scale, which the tests confirm against the volume
accounting here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigError


@dataclass
class TreeStats:
    """Communication accounting of one tree all-reduce execution."""

    depth: int = 0
    bytes_sent_per_rank: List[float] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        return float(sum(self.bytes_sent_per_rank))


def _parent(rank: int) -> int:
    return (rank - 1) // 2


def _children(rank: int, n: int) -> List[int]:
    kids = [2 * rank + 1, 2 * rank + 2]
    return [k for k in kids if k < n]


def tree_allreduce(buffers: List[np.ndarray]) -> TreeStats:
    """All-reduce (sum) ``buffers`` over an implicit binary tree rooted
    at rank 0; the list's entries are replaced with the reduced arrays.
    Returns comm stats."""
    if not isinstance(buffers, list):
        raise ConfigError("tree_allreduce needs a mutable list of buffers")
    n = len(buffers)
    if n < 1:
        raise ConfigError("need at least one rank")
    shapes = {b.shape for b in buffers}
    if len(shapes) != 1:
        raise ConfigError(f"buffer shapes differ: {shapes}")
    stats = TreeStats(bytes_sent_per_rank=[0.0] * n)
    if n == 1:
        return stats

    nbytes = buffers[0].nbytes
    depth = 0
    # Reduce: deepest level first so parents see summed subtrees.
    order = sorted(range(1, n), key=_parent, reverse=True)
    for rank in order:
        parent = _parent(rank)
        buffers[parent] = buffers[parent] + buffers[rank]
        stats.bytes_sent_per_rank[rank] += nbytes

    # Broadcast: copy the root's total down, level by level.
    frontier = [0]
    while frontier:
        depth += 1
        next_frontier: List[int] = []
        for rank in frontier:
            for child in _children(rank, n):
                buffers[child] = buffers[rank].copy()
                stats.bytes_sent_per_rank[rank] += nbytes
                next_frontier.append(child)
        frontier = next_frontier
    stats.depth = depth - 1  # the last expansion adds no level
    return stats
