"""Model-synchronization substrate.

Two layers:

* **latency models** (:mod:`repro.sync.model`) — closed-form per-iteration
  synchronization time for ring, tree, and central (parameter-server)
  strategies over the accelerator interconnect.  The ring model reproduces
  Figure 2b: latency normalized to the 2-accelerator case saturates at 2×.
* a **functional ring all-reduce** (:mod:`repro.sync.ring`) — an actual
  chunked reduce-scatter + all-gather over numpy arrays, used to verify
  the communication-volume accounting behind the latency model and to
  drive the training substrate.
"""

from repro.sync.model import (
    CentralSyncModel,
    RingSyncModel,
    SyncModel,
    TreeSyncModel,
)
from repro.sync.ring import RingAllReduce, ring_allreduce
from repro.sync.tree import TreeStats, tree_allreduce

__all__ = [
    "CentralSyncModel",
    "RingAllReduce",
    "RingSyncModel",
    "SyncModel",
    "TreeStats",
    "TreeSyncModel",
    "ring_allreduce",
    "tree_allreduce",
]
