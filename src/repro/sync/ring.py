"""Functional chunked ring all-reduce.

This is the actual algorithm the latency model prices: reduce-scatter
followed by all-gather over a logical ring.  It executes on numpy arrays
(one per simulated rank) and records the per-step communication volume,
so tests can assert both numerical correctness (result equals the sum of
the inputs on every rank) and the volume identity behind Figure 2b
(every rank moves exactly ``2·M·(n-1)/n`` bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass
class RingStats:
    """Communication accounting of one all-reduce execution."""

    steps: int = 0
    bytes_sent_per_rank: List[float] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        return float(sum(self.bytes_sent_per_rank))


class RingAllReduce:
    """Chunked ring all-reduce over in-memory rank buffers."""

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ConfigError(f"need at least one rank, got {num_ranks}")
        self.num_ranks = num_ranks

    def __call__(self, buffers: Sequence[np.ndarray]) -> RingStats:
        """All-reduce (sum) ``buffers`` in place; returns comm stats.

        Every buffer must have the same shape and dtype.  After the call
        each rank's buffer holds the elementwise sum of all inputs.
        """
        n = self.num_ranks
        if len(buffers) != n:
            raise ConfigError(f"expected {n} buffers, got {len(buffers)}")
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ConfigError(f"buffer shapes differ: {shapes}")
        stats = RingStats(bytes_sent_per_rank=[0.0] * n)
        if n == 1:
            return stats

        flats = [b.reshape(-1) for b in buffers]
        length = flats[0].shape[0]
        # Split into n near-equal segments.
        bounds = np.linspace(0, length, n + 1).astype(int)
        segments = [slice(bounds[i], bounds[i + 1]) for i in range(n)]
        itemsize = flats[0].itemsize

        # Reduce-scatter: at step s, rank r sends segment (r - s) mod n to
        # rank (r + 1) mod n, which accumulates it.
        for step in range(n - 1):
            sends = []
            for rank in range(n):
                seg = segments[(rank - step) % n]
                sends.append((rank, (rank + 1) % n, seg, flats[rank][seg].copy()))
            for src, dst, seg, payload in sends:
                flats[dst][seg] += payload
                stats.bytes_sent_per_rank[src] += payload.size * itemsize
            stats.steps += 1

        # All-gather: rank r now owns the fully reduced segment (r + 1)
        # mod n; circulate ownership around the ring.
        for step in range(n - 1):
            sends = []
            for rank in range(n):
                seg = segments[(rank + 1 - step) % n]
                sends.append((rank, (rank + 1) % n, seg, flats[rank][seg].copy()))
            for src, dst, seg, payload in sends:
                flats[dst][seg] = payload
                stats.bytes_sent_per_rank[src] += payload.size * itemsize
            stats.steps += 1
        return stats


def ring_allreduce(buffers: Sequence[np.ndarray]) -> RingStats:
    """Convenience wrapper: all-reduce ``buffers`` in place."""
    return RingAllReduce(len(buffers))(buffers)
