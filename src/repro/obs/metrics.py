"""Counters and histograms aggregated into a machine-readable run manifest.

The registry records **model quantities only** — points evaluated, cache
hits, simulated batches, throughput samples — never wall-clock timings.
That restriction is what makes manifests *deterministic*: a sweep
evaluated serially and the same sweep fanned out over a process pool
merge to the identical manifest (a test pins this), so manifests can be
diffed across runs and gated in CI.  Wall timings belong to the tracer.

Merging is exact because every statistic kept is order-insensitive
enough for the fixed merge order the sweep engine uses: counters and
histogram counts/totals add, minima/maxima combine, and the sweep engine
always folds child manifests in point-index order.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.errors import ConfigError

#: Schema tag stamped into every manifest; bump on layout changes.
MANIFEST_SCHEMA = "repro-obs-manifest/1"


@dataclass
class Histogram:
    """Streaming summary of one observed quantity."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_dict(self, data: Dict) -> None:
        count = int(data["count"])
        if count <= 0:
            return
        self.count += count
        self.total += float(data["total"])
        self.min = min(self.min, float(data["min"]))
        self.max = max(self.max, float(data["max"]))


class MetricsRegistry:
    """A run's named counters and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def scoped(self, prefix: str) -> Dict[str, int]:
        """The counters under a name prefix, in sorted order.

        Lets callers surface one subsystem's counter family (e.g.
        ``service.batch``) without copying the whole table — the
        service's ``stats`` op uses this to group the batch-scheduler
        counters."""
        return {
            name: self.counters[name]
            for name in sorted(self.counters)
            if name.startswith(prefix)
        }

    def __bool__(self) -> bool:
        return bool(self.counters or self.histograms)

    # -- manifests ----------------------------------------------------

    def to_manifest(self) -> Dict:
        """The JSON-encodable run manifest (deterministic key order)."""
        return {
            "schema": MANIFEST_SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
        }

    def merge_manifest(self, manifest: Dict) -> None:
        """Fold another manifest into this registry (validated first)."""
        validate_manifest(manifest)
        for name, value in manifest["counters"].items():
            self.inc(name, int(value))
        for name, data in manifest["histograms"].items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_dict(data)

    @classmethod
    def merged(cls, manifests: Iterable[Dict]) -> "MetricsRegistry":
        reg = cls()
        for manifest in manifests:
            reg.merge_manifest(manifest)
        return reg

    def write_manifest(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_manifest(), indent=2) + "\n")
        return path


def validate_manifest(manifest: Dict) -> None:
    """Raise :class:`ConfigError` unless ``manifest`` is a well-formed
    run manifest (the CI smoke gate calls this on real output)."""
    if not isinstance(manifest, dict):
        raise ConfigError("manifest must be a dict")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ConfigError(
            f"manifest schema {manifest.get('schema')!r} != {MANIFEST_SCHEMA!r}"
        )
    counters = manifest.get("counters")
    histograms = manifest.get("histograms")
    if not isinstance(counters, dict) or not isinstance(histograms, dict):
        raise ConfigError("manifest needs 'counters' and 'histograms' dicts")
    for name, value in counters.items():
        if not isinstance(name, str) or not isinstance(value, int):
            raise ConfigError(f"bad counter entry {name!r}: {value!r}")
    for name, data in histograms.items():
        if not isinstance(name, str) or not isinstance(data, dict):
            raise ConfigError(f"bad histogram entry {name!r}")
        if not isinstance(data.get("count"), int) or data["count"] < 0:
            raise ConfigError(f"histogram {name!r} has a bad count")
        if data["count"] > 0:
            for key in ("total", "min", "max"):
                if not isinstance(data.get(key), (int, float)):
                    raise ConfigError(f"histogram {name!r} missing {key!r}")
            if data["min"] > data["max"]:
                raise ConfigError(f"histogram {name!r} has min > max")


def load_manifest(path) -> Dict:
    """Read and validate a manifest file."""
    manifest = json.loads(Path(path).read_text())
    validate_manifest(manifest)
    return manifest
