"""Structured span/event tracing with Chrome ``trace_event`` export.

A :class:`Tracer` records two kinds of spans on named *tracks*:

* **wall spans** — real elapsed time around a code region, opened with
  the :meth:`Tracer.span` context manager.  Nesting is tracked with an
  explicit stack so the Chrome viewer renders call trees correctly.
* **model spans** — intervals on a *simulated* timeline (a DES station
  busy period, a fluid PCIe transfer lifetime, the analytical engine's
  iteration decomposition), added with :meth:`Tracer.add_model_span`.
  Their timestamps are simulated seconds, not wall seconds.

Every track exports as its own Chrome process so wall time and the
simulated timelines never share an axis.  The export is plain
``trace_event`` JSON (``{"traceEvents": [...]}``) loadable in
``chrome://tracing`` / Perfetto.

The module keeps **no global state** — activation lives in
:mod:`repro.obs` so that a disabled program never constructs a tracer at
all (the zero-overhead contract is tested).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError

#: Track names used by the built-in instrumentation.
WALL_TRACK = "wall"
MODEL_TRACK = "model"

#: Category tag every engine puts on its top-level simulated-iteration
#: spans; ``repro trace`` reconciles their totals against
#: ``result.iteration_time``.
ITERATION_CATEGORY = "iteration"


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: ``[start, end)`` seconds on ``track``."""

    name: str
    cat: str
    track: str
    start: float
    end: float
    depth: int = 0
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class EventRecord:
    """One instant event."""

    name: str
    cat: str
    track: str
    ts: float
    args: Optional[Dict[str, Any]] = None


@dataclass
class SpanSummary:
    """Aggregate of every span sharing one name (``repro profile``)."""

    name: str
    track: str
    count: int = 0
    total: float = 0.0
    max_duration: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _OpenSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_OpenSpan":
        tracer = self._tracer
        self._start = tracer._clock()
        tracer._stack.append(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        tracer._record_wall(
            self._name, self._cat, self._start, end,
            len(tracer._stack), self._args,
        )


class Tracer:
    """Collects spans and instant events for one run."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self._stack: List[str] = []
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []

    # -- recording ----------------------------------------------------

    def span(self, name: str, cat: str = "span", **args: Any) -> _OpenSpan:
        """Open a wall-clock span around a ``with`` block."""
        return _OpenSpan(self, name, cat, args or None)

    def _record_wall(
        self, name, cat, start, end, depth, args
    ) -> None:
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                track=WALL_TRACK,
                start=start - self._t0,
                end=end - self._t0,
                depth=depth,
                args=args,
            )
        )

    def add_model_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        cat: str = "model",
        track: str = MODEL_TRACK,
        depth: int = 0,
        **args: Any,
    ) -> None:
        """Record a span on a simulated timeline (seconds of model time)."""
        if end < start:
            raise ConfigError(
                f"model span {name!r} ends before it starts: {start}..{end}"
            )
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                track=track,
                start=start,
                end=end,
                depth=depth,
                args=args or None,
            )
        )

    def instant(
        self, name: str, cat: str = "event", track: str = WALL_TRACK, **args
    ) -> None:
        """Record an instant event at the current wall time (or pass a
        ``ts`` arg for model tracks)."""
        ts = args.pop("ts", None)
        if ts is None:
            ts = self._clock() - self._t0
        self.events.append(
            EventRecord(name=name, cat=cat, track=track, ts=ts, args=args or None)
        )

    # -- queries ------------------------------------------------------

    def model_spans(
        self, cat: Optional[str] = None, track: Optional[str] = None
    ) -> List[SpanRecord]:
        """Spans on simulated timelines, optionally filtered by category."""
        return [
            s
            for s in self.spans
            if s.track != WALL_TRACK
            and (cat is None or s.cat == cat)
            and (track is None or s.track == track)
        ]

    def wall_spans(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.track == WALL_TRACK]

    def summarize(self, top: Optional[int] = None) -> List[SpanSummary]:
        """Spans aggregated by name, widest total first."""
        table: Dict[tuple, SpanSummary] = {}
        for s in self.spans:
            key = (s.track, s.name)
            agg = table.get(key)
            if agg is None:
                agg = table[key] = SpanSummary(name=s.name, track=s.track)
            agg.count += 1
            agg.total += s.duration
            agg.max_duration = max(agg.max_duration, s.duration)
        out = sorted(table.values(), key=lambda a: (-a.total, a.name))
        return out[:top] if top is not None else out

    # -- Chrome trace_event export ------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The run as a ``chrome://tracing`` / Perfetto JSON object.

        Each track is one process; timestamps are microseconds.  Wall
        spans carry their recorded nesting depth implicitly through
        containment on a single thread, which the viewer reconstructs.
        """
        tracks: List[str] = []
        for s in self.spans:
            if s.track not in tracks:
                tracks.append(s.track)
        for e in self.events:
            if e.track not in tracks:
                tracks.append(e.track)
        pid_of = {t: i for i, t in enumerate(tracks)}

        events: List[Dict[str, Any]] = []
        for track, pid in pid_of.items():
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": track},
                }
            )
        for s in self.spans:
            row: Dict[str, Any] = {
                "ph": "X",
                "pid": pid_of[s.track],
                "tid": 0,
                "name": s.name,
                "cat": s.cat,
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
            }
            if s.args:
                row["args"] = dict(s.args)
            events.append(row)
        for e in self.events:
            row = {
                "ph": "i",
                "s": "t",
                "pid": pid_of[e.track],
                "tid": 0,
                "name": e.name,
                "cat": e.cat,
                "ts": e.ts * 1e6,
            }
            if e.args:
                row["args"] = dict(e.args)
            events.append(row)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> Path:
        """Serialize :meth:`to_chrome` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path


def steady_iteration_time(iteration_spans: Sequence[SpanRecord]) -> float:
    """Per-iteration time implied by a trace's iteration spans.

    A single span (the analytical/flow engines emit one steady-state
    iteration) is its own answer.  A train of spans (the DES emits one
    per simulated iteration) is measured exactly like the DES measures
    throughput: the spacing of iteration *finishes* over the post-warmup
    window, so the number reconciles with ``result.iteration_time`` by
    construction.
    """
    spans = sorted(iteration_spans, key=lambda s: s.end)
    if not spans:
        raise ConfigError("trace has no iteration spans to reconcile")
    if len(spans) == 1:
        return spans[0].duration
    n = len(spans)
    warmup = min(n // 5, n - 1)
    window = spans[-1].end - spans[warmup].end
    done = n - 1 - warmup
    if done <= 0 or window <= 0:
        return spans[-1].end / n
    return window / done
