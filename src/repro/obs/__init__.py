"""``repro.obs`` — the simulation observability layer.

One subsystem, three faces:

* **tracing** — :class:`Tracer` records wall-clock spans around engine
  phases and *model-time* spans on simulated timelines (DES stations,
  fluid PCIe transfers, the analytical iteration decomposition), and
  exports Chrome ``trace_event`` JSON (``repro trace``).
* **metrics** — :class:`MetricsRegistry` aggregates counters and
  histograms of model quantities into a deterministic run manifest
  (``--metrics``, merged across sweep workers).
* **profiling hooks** — :func:`profiled` and the module-level
  :func:`span`/:func:`inc`/:func:`observe` helpers sit in the hot paths
  of every engine, the cache, the prep-pool and the sweep engine.

The whole layer is **zero-overhead when disabled**: nothing is active
unless a :func:`session` installs a tracer and/or registry, and every
helper's disabled path is a single thread-local load and branch — no
allocation, no clock read (a test pins the no-op behaviour).  Sessions
are **per-thread**: the service layer runs concurrent requests on a
thread pool, each under its own hermetic instruments.

Usage::

    from repro import obs

    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    with obs.session(tracer=tracer, metrics=metrics):
        result = api.simulate("Resnet-50", "trainbox", 256)
    tracer.write_chrome("trace.json")
    manifest = metrics.to_manifest()
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Optional

from repro.obs.metrics import (
    MANIFEST_SCHEMA,
    Histogram,
    MetricsRegistry,
    load_manifest,
    validate_manifest,
)
from repro.obs.tracer import (
    ITERATION_CATEGORY,
    MODEL_TRACK,
    WALL_TRACK,
    EventRecord,
    SpanRecord,
    SpanSummary,
    Tracer,
    steady_iteration_time,
)

__all__ = [
    "ITERATION_CATEGORY",
    "MANIFEST_SCHEMA",
    "MODEL_TRACK",
    "WALL_TRACK",
    "EventRecord",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanSummary",
    "Tracer",
    "current_metrics",
    "current_tracer",
    "inc",
    "instant",
    "load_manifest",
    "model_span",
    "observe",
    "profiled",
    "session",
    "span",
    "steady_iteration_time",
    "validate_manifest",
]

# Active instruments, per thread.  Thread-local (not module-global): the
# service layer (:mod:`repro.service`) runs concurrent requests on a
# thread pool, each under its own hermetic session, so one request's
# instruments must never observe another's engine run.  Single-threaded
# callers see exactly the old behaviour, and sweep workers are separate
# processes that start with both disabled.
_STATE = threading.local()


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def current_tracer() -> Optional[Tracer]:
    return getattr(_STATE, "tracer", None)


def current_metrics() -> Optional[MetricsRegistry]:
    return getattr(_STATE, "metrics", None)


class session:
    """Context manager installing instruments for the enclosed run.

    ``None`` leaves the corresponding instrument unchanged, so nested
    sessions compose (e.g. the CLI installs a tracer, the sweep engine a
    per-point registry).  On exit the previous instruments are restored.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._tracer = tracer
        self._metrics = metrics
        self._saved = (None, None)

    def __enter__(self) -> "session":
        self._saved = (current_tracer(), current_metrics())
        if self._tracer is not None:
            _STATE.tracer = self._tracer
        if self._metrics is not None:
            _STATE.metrics = self._metrics
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _STATE.tracer, _STATE.metrics = self._saved


def span(name: str, cat: str = "span", **args: Any):
    """A wall span on the active tracer, or a shared no-op when disabled."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, **args)


def model_span(name: str, start: float, end: float, **kwargs: Any) -> None:
    """Record a simulated-time span when tracing is active."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is not None:
        tracer.add_model_span(name, start, end, **kwargs)


def instant(name: str, cat: str = "event", **args: Any) -> None:
    """Record an instant event when tracing is active."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is not None:
        tracer.instant(name, cat=cat, **args)


def inc(name: str, value: int = 1) -> None:
    """Bump a counter when metrics are active."""
    metrics = getattr(_STATE, "metrics", None)
    if metrics is not None:
        metrics.inc(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample when metrics are active."""
    metrics = getattr(_STATE, "metrics", None)
    if metrics is not None:
        metrics.observe(name, value)


def profiled(name: Optional[str] = None, cat: str = "profile"):
    """Decorator tracing calls of a hot-path function as wall spans.

    Disabled sessions pay one global load and branch, then call the
    function directly — timings go to the tracer only (never the metrics
    registry, whose manifests must stay deterministic across runs).
    """

    def decorate(fn):
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = getattr(_STATE, "tracer", None)
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(label, cat=cat):
                return fn(*args, **kwargs)

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
