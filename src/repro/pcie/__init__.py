"""PCIe interconnect substrate.

This package models the general-purpose interconnect of a neural network
server the way the paper uses it (§II-C, §IV-D):

* a **tree topology** rooted at the root complex (RC), with PCIe switches
  as internal nodes and devices at the leaves (:mod:`repro.pcie.topology`);
* **links** of a given generation and width that bound per-direction
  bandwidth (:mod:`repro.pcie.link`);
* **enumeration** that assigns each node an address range covering its
  subtree, exactly like real PCIe bus enumeration
  (:mod:`repro.pcie.address`);
* **routing**, both as shortest tree paths and as hop-by-hop address-based
  forwarding, which is what makes peer-to-peer (P2P) transfers bypass the
  root complex when endpoints share a switch (:mod:`repro.pcie.routing`);
* a **flow-based contention solver** that computes steady-state transfer
  rates and completion times given a set of concurrent flows
  (:mod:`repro.pcie.traffic`).
"""

from repro.pcie.link import Link, LinkDirection, PcieGen, link_bandwidth
from repro.pcie.topology import (
    Endpoint,
    Node,
    NodeKind,
    PcieTopology,
    RootComplex,
    Switch,
)
from repro.pcie.address import enumerate_topology
from repro.pcie.flowsim import FlowSimulator, Transfer, TransferRecord
from repro.pcie.routing import forward_path, route
from repro.pcie.traffic import (
    Flow,
    TrafficSolver,
    completion_time,
    link_loads,
    price_flows,
)

__all__ = [
    "Endpoint",
    "Flow",
    "FlowSimulator",
    "Link",
    "LinkDirection",
    "Node",
    "NodeKind",
    "PcieGen",
    "PcieTopology",
    "RootComplex",
    "Switch",
    "TrafficSolver",
    "Transfer",
    "TransferRecord",
    "completion_time",
    "enumerate_topology",
    "forward_path",
    "link_bandwidth",
    "link_loads",
    "price_flows",
    "route",
]
