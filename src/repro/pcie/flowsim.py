"""Event-driven fluid simulation of concurrent PCIe transfers.

The analytical layer prices steady-state traffic with closed forms.
This module simulates the *transient* behaviour: each transfer is a
fluid flow with a byte volume; at every event (a flow finishing) the
max-min fair rate allocation is re-solved over the flows still active,
and progress advances piecewise-linearly.  This is the classic fluid
network model, and it is exact for max-min fairness with these
piecewise-constant rates.

Uses: validating the analytical completion-time law on overlapping
transfer patterns, and studying start-time skew (e.g. staggered batch
fetches) that steady-state math cannot see.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ConfigError, SimulationError
from repro.pcie.topology import PcieTopology
from repro.pcie.traffic import Flow, TrafficSolver


@dataclass(frozen=True)
class Transfer:
    """One transfer request: move ``volume`` bytes from ``src`` to
    ``dst``, eligible to start at ``start_time``."""

    src: str
    dst: str
    volume: float
    start_time: float = 0.0
    demand: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise ConfigError(f"transfer volume must be positive: {self.volume}")
        if self.start_time < 0:
            raise ConfigError("start_time must be >= 0")


@dataclass(frozen=True)
class TransferRecord:
    """Outcome of one transfer."""

    transfer: Transfer
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.transfer.start_time

    @property
    def mean_rate(self) -> float:
        if self.duration <= 0:
            return math.inf
        return self.transfer.volume / self.duration


class FlowSimulator:
    """Piecewise-constant-rate fluid simulation over a PCIe topology."""

    def __init__(self, topology: PcieTopology) -> None:
        self._topology = topology
        self._solver = TrafficSolver(topology)

    def run(self, transfers: Sequence[Transfer]) -> List[TransferRecord]:
        """Simulate all transfers to completion; returns records in the
        order the transfers were given."""
        if not transfers:
            return []
        with obs.span("flowsim.run", cat="pcie", transfers=len(transfers)):
            records = self._run(transfers)
        obs.inc("flowsim.runs")
        obs.inc("flowsim.transfers", len(transfers))
        tracer = obs.current_tracer()
        if tracer is not None:
            # Transfer lifetimes on the simulated timeline, one span each.
            for record in records:
                t = record.transfer
                tracer.add_model_span(
                    t.label or f"{t.src}->{t.dst}",
                    t.start_time,
                    record.finish_time,
                    cat="transfer",
                    track="flowsim",
                    volume=t.volume,
                )
        return records

    def _run(self, transfers: Sequence[Transfer]) -> List[TransferRecord]:
        remaining = {i: t.volume for i, t in enumerate(transfers)}
        # A transfer's Flow never changes across events, so build each
        # one once up front instead of re-materializing the whole active
        # list every event-loop iteration (the loop runs O(n) times, so
        # rebuilding made rate solves O(n^2) in allocations).
        flow_of = [
            Flow(t.src, t.dst, demand=t.demand, label=t.label)
            for t in transfers
        ]
        finish: Dict[int, float] = {}
        # Admission order: a head pointer over the start-time-sorted index
        # list, so each admission is O(1) instead of a list-head pop that
        # shifts every queued element.
        order = sorted(range(len(transfers)), key=lambda i: transfers[i].start_time)
        head = 0
        active: List[int] = []
        now = 0.0

        guard = 0
        while len(finish) < len(transfers):
            guard += 1
            if guard > 4 * len(transfers) + 16:
                raise SimulationError("fluid simulation failed to converge")
            obs.inc("flowsim.rate_solves")
            # Admit transfers whose start time has arrived.
            while head < len(order) and transfers[order[head]].start_time <= now + 1e-15:
                active.append(order[head])
                head += 1
            # Compact once the dead prefix dominates the list, keeping
            # the queue's memory proportional to what is still pending.
            if head > len(order) // 2:
                del order[:head]
                head = 0
            if not active:
                if head >= len(order):
                    raise SimulationError("no active or pending transfers left")
                now = transfers[order[head]].start_time
                continue

            rates = self._solver.allocate([flow_of[i] for i in active])

            # Next event: a flow draining or a new arrival.
            horizon = math.inf
            if head < len(order):
                horizon = transfers[order[head]].start_time - now
            dt = horizon
            for idx, rate in zip(active, rates):
                if rate <= 0 or math.isinf(rate):
                    # Infinite rate (src == dst) drains instantly.
                    dt = 0.0 if math.isinf(rate) else dt
                    continue
                dt = min(dt, remaining[idx] / rate)
            if not math.isfinite(dt):
                raise SimulationError("active flows cannot make progress")

            for idx, rate in zip(active, rates):
                if math.isinf(rate):
                    remaining[idx] = 0.0
                else:
                    remaining[idx] -= rate * dt
            now += dt
            still_active = []
            for idx in active:
                if remaining[idx] <= 1e-6:
                    finish[idx] = now
                else:
                    still_active.append(idx)
            active = still_active

        return [
            TransferRecord(transfer=transfers[i], finish_time=finish[i])
            for i in range(len(transfers))
        ]

    def makespan(self, transfers: Sequence[Transfer]) -> float:
        """Time until the last transfer completes."""
        records = self.run(transfers)
        return max((r.finish_time for r in records), default=0.0)
