"""PCIe link generations and per-link bandwidth.

Bandwidth figures are the usable per-direction data rates commonly quoted
for each generation (after encoding overhead), in bytes per second per
lane.  A Gen3 x16 link therefore carries ~16 GB/s in each direction, which
is the number the paper uses when comparing against NVLink (§II-C) and when
doubling bandwidth for the ``B+Acc+P2P+Gen4`` configuration (§VI-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import units


class PcieGen(enum.Enum):
    """PCIe generation; the value is usable bandwidth per lane per
    direction in bytes/second."""

    GEN1 = 0.25 * units.GB
    GEN2 = 0.5 * units.GB
    GEN3 = 1.0 * units.GB
    GEN4 = 2.0 * units.GB
    GEN5 = 4.0 * units.GB

    @property
    def per_lane_bandwidth(self) -> float:
        return float(self.value)

    def next_gen(self) -> "PcieGen":
        """The following generation (used for Gen3→Gen4 upgrade sweeps)."""
        order = list(PcieGen)
        idx = order.index(self)
        if idx + 1 >= len(order):
            raise ValueError(f"{self.name} is the newest modeled generation")
        return order[idx + 1]


def link_bandwidth(gen: PcieGen, lanes: int) -> float:
    """Usable per-direction bandwidth (bytes/s) of a ``gen`` x``lanes`` link."""
    if lanes not in (1, 2, 4, 8, 16, 32):
        raise ValueError(f"invalid PCIe lane count: {lanes}")
    return gen.per_lane_bandwidth * lanes


class LinkDirection(enum.Enum):
    """Direction of traffic over a tree link.

    ``UP`` flows from the child (downstream) node toward its parent
    (upstream, i.e. toward the root complex); ``DOWN`` is the reverse.
    PCIe links are full duplex, so the two directions have independent
    capacity.
    """

    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class Link:
    """A full-duplex tree link between a node and its parent.

    Attributes:
        child_id: id of the downstream node; a link is uniquely identified
            by its downstream endpoint because a tree node has exactly one
            parent.
        parent_id: id of the upstream node.
        gen: PCIe generation.
        lanes: lane count (x1..x32).
    """

    child_id: str
    parent_id: str
    gen: PcieGen = PcieGen.GEN3
    lanes: int = 16

    @property
    def bandwidth(self) -> float:
        """Per-direction usable bandwidth in bytes/s."""
        return link_bandwidth(self.gen, self.lanes)

    def directed(self, direction: LinkDirection) -> "DirectedLink":
        return DirectedLink(self, direction)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.parent_id}<->{self.child_id} "
            f"({self.gen.name} x{self.lanes}, {self.bandwidth / units.GB:.1f} GB/s)"
        )


@dataclass(frozen=True)
class DirectedLink:
    """One direction of a :class:`Link`; the unit of capacity accounting."""

    link: Link
    direction: LinkDirection

    @property
    def bandwidth(self) -> float:
        return self.link.bandwidth

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.direction is LinkDirection.UP:
            return f"{self.link.child_id}->{self.link.parent_id}"
        return f"{self.link.parent_id}->{self.link.child_id}"
