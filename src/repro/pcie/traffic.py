"""Flow-based traffic accounting and contention on the PCIe tree.

Training is throughput-oriented and deeply pipelined (next-batch prefetch,
double buffering), so the paper models interconnect cost in steady state:
what matters is how many bytes per iteration cross each directed link and
which link saturates first (§III-C, Figure 10c).  Two views are provided:

* **volume mode** — each flow carries a byte volume per iteration;
  :func:`completion_time` returns the pipelined time for one iteration of
  all flows, i.e. ``max over directed links of (bytes on link / link bw)``.
* **rate mode** — :class:`TrafficSolver` computes a max-min fair rate
  allocation for concurrent flows with optional per-flow demand caps
  (progressive water-filling), used by the discrete-event engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.pcie.link import DirectedLink
from repro.pcie.routing import route
from repro.pcie.topology import PcieTopology


@dataclass(frozen=True)
class Flow:
    """A unidirectional transfer between two endpoints.

    Attributes:
        src / dst: endpoint node ids.
        volume: bytes moved per iteration (volume mode); ignored by the
            rate solver.
        demand: optional cap in bytes/s on how fast the flow can go even
            with free links (e.g. an SSD's media rate); ``None`` = elastic.
        label: free-form tag used for reporting ("ssd_read", "prep_out"...).
    """

    src: str
    dst: str
    volume: float = 0.0
    demand: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"flow volume must be >= 0, got {self.volume}")
        if self.demand is not None and self.demand <= 0:
            raise ValueError(f"flow demand must be positive, got {self.demand}")


def link_loads(
    topology: PcieTopology, flows: Iterable[Flow]
) -> Dict[DirectedLink, float]:
    """Total byte volume crossing each directed link for ``flows``."""
    loads: Dict[DirectedLink, float] = {}
    for flow in flows:
        if flow.volume == 0:
            continue
        for hop in route(topology, flow.src, flow.dst):
            loads[hop] = loads.get(hop, 0.0) + flow.volume
    return loads


def completion_time(topology: PcieTopology, flows: Iterable[Flow]) -> float:
    """Pipelined steady-state time to move every flow's volume once.

    With deep pipelining, each directed link independently streams the
    bytes routed over it, so the iteration takes as long as the busiest
    link: ``max(load / bandwidth)``.  Returns 0.0 for no traffic.
    """
    loads = link_loads(topology, flows)
    if not loads:
        return 0.0
    return max(load / hop.bandwidth for hop, load in loads.items())


def bottleneck_link(
    topology: PcieTopology, flows: Iterable[Flow]
) -> Optional[Tuple[DirectedLink, float]]:
    """The directed link with the highest transfer time, and that time."""
    loads = link_loads(topology, flows)
    if not loads:
        return None
    hop, load = max(loads.items(), key=lambda kv: kv[1] / kv[0].bandwidth)
    return hop, load / hop.bandwidth


def price_flows(
    topology: PcieTopology, flows: Iterable[Flow]
) -> Tuple[float, Optional[DirectedLink]]:
    """Completion time and bottleneck link from one ``link_loads`` pass.

    Callers wanting both views used to pay two full routing passes over
    the same flow set (:func:`completion_time` then
    :func:`bottleneck_link`); the values here are the identical maxima
    derived from one shared load table.  Returns ``(0.0, None)`` for no
    traffic.
    """
    loads = link_loads(topology, flows)
    if not loads:
        return 0.0, None
    hop, load = max(loads.items(), key=lambda kv: kv[1] / kv[0].bandwidth)
    return load / hop.bandwidth, hop


class TrafficSolver:
    """Max-min fair bandwidth allocation for concurrent flows.

    Implements progressive filling: all unfrozen flows grow at the same
    rate; whenever a link saturates (or a flow hits its demand cap), the
    affected flows freeze at their current rate and the process repeats on
    the residual capacity.  The result is the classic max-min fair
    allocation, which is a reasonable model for PCIe round-robin
    arbitration across ports.
    """

    def __init__(self, topology: PcieTopology) -> None:
        self._topology = topology

    def allocate(self, flows: Sequence[Flow]) -> List[float]:
        """Rates (bytes/s) per flow, positionally matching ``flows``."""
        routes = [route(self._topology, f.src, f.dst) for f in flows]
        for flow, hops in zip(flows, routes):
            if not hops and flow.src != flow.dst:
                raise RoutingError(f"no route for flow {flow.src}->{flow.dst}")

        rates = [0.0] * len(flows)
        frozen = [False] * len(flows)
        # Flows routed entirely inside one node (src == dst) are only
        # bounded by their demand.
        for i, hops in enumerate(routes):
            if not hops:
                rates[i] = flows[i].demand if flows[i].demand is not None else math.inf
                frozen[i] = True

        capacity: Dict[DirectedLink, float] = {}
        members: Dict[DirectedLink, List[int]] = {}
        for i, hops in enumerate(routes):
            for hop in hops:
                capacity.setdefault(hop, hop.bandwidth)
                members.setdefault(hop, []).append(i)

        while not all(frozen):
            # The common increment is limited by the tightest link
            # (residual capacity / active flows on it) and by the smallest
            # remaining per-flow demand headroom.
            increment = math.inf
            for hop, cap in capacity.items():
                active = [i for i in members[hop] if not frozen[i]]
                if active:
                    increment = min(increment, cap / len(active))
            for i, flow in enumerate(flows):
                if not frozen[i] and flow.demand is not None:
                    increment = min(increment, flow.demand - rates[i])
            if not math.isfinite(increment):
                # No unfrozen flow touches any link and none has a demand
                # cap: they are unbounded.
                for i in range(len(flows)):
                    if not frozen[i]:
                        rates[i] = math.inf
                        frozen[i] = True
                break

            for i in range(len(flows)):
                if not frozen[i]:
                    rates[i] += increment
            for hop in capacity:
                active = [i for i in members[hop] if not frozen[i]]
                capacity[hop] -= increment * len(active)

            # Freeze flows capped by demand first, then flows crossing a
            # saturated link.
            for i, flow in enumerate(flows):
                if frozen[i]:
                    continue
                if flow.demand is not None and rates[i] >= flow.demand - 1e-9:
                    rates[i] = flow.demand
                    frozen[i] = True
            for hop, cap in capacity.items():
                if cap <= 1e-6:
                    for i in members[hop]:
                        frozen[i] = True
        return rates
