"""PCIe tree topology: root complex, switches, and endpoint devices.

The topology mirrors Figure 6 of the paper: a single root complex at the
top, PCIe switches as internal nodes, and devices (SSDs, NN accelerators,
data-preparation accelerators) at the leaves.  Switches have a bounded
number of links (the paper cites PEX8796-class parts with one uplink and
five downlinks, §V-D); the topology enforces that bound so that the
box layouts we build are physically plausible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import TopologyError
from repro.pcie.link import Link, PcieGen


class NodeKind(enum.Enum):
    ROOT_COMPLEX = "root_complex"
    SWITCH = "switch"
    ENDPOINT = "endpoint"


@dataclass
class Node:
    """A node in the PCIe tree.

    ``device`` is an opaque payload for endpoints (any object the caller
    wants to attach, typically a device model from :mod:`repro.devices`).
    Address ranges (``addr_base``/``addr_limit``) are filled in by
    :func:`repro.pcie.address.enumerate_topology`.
    """

    node_id: str
    kind: NodeKind
    device: Optional[object] = None
    max_links: Optional[int] = None
    addr_base: int = -1
    addr_limit: int = -1

    @property
    def enumerated(self) -> bool:
        return self.addr_base >= 0 and self.addr_limit > self.addr_base

    def contains_address(self, address: int) -> bool:
        if not self.enumerated:
            raise TopologyError(f"node {self.node_id} has not been enumerated")
        return self.addr_base <= address < self.addr_limit


def RootComplex(node_id: str = "rc", max_links: int = 8) -> Node:
    """Create a root-complex node.

    ``max_links`` models the number of PCIe root ports the host exposes.
    """
    return Node(node_id, NodeKind.ROOT_COMPLEX, max_links=max_links)


def Switch(node_id: str, max_links: int = 6) -> Node:
    """Create a switch node.  ``max_links`` counts the uplink too, so the
    default of 6 means one uplink plus five downlinks (PEX8796 style)."""
    return Node(node_id, NodeKind.SWITCH, max_links=max_links)


def Endpoint(node_id: str, device: Optional[object] = None) -> Node:
    """Create an endpoint (leaf device) node."""
    return Node(node_id, NodeKind.ENDPOINT, device=device)


class PcieTopology:
    """A mutable PCIe tree.

    Build it by creating the root, then attaching switches/endpoints with
    :meth:`attach`.  Call :meth:`validate` (or let routing/enumeration do
    it) to check the structural invariants:

    * exactly one root complex, which is the tree root;
    * every non-root node has exactly one parent (tree property);
    * endpoints are leaves;
    * no node exceeds its ``max_links`` budget (uplink + downlinks).
    """

    def __init__(self, root: Optional[Node] = None) -> None:
        self._nodes: Dict[str, Node] = {}
        self._parent: Dict[str, str] = {}
        self._children: Dict[str, List[str]] = {}
        self._links: Dict[str, Link] = {}  # keyed by child node id
        self.root: Optional[Node] = None
        if root is not None:
            self.add_root(root)

    # -- construction -------------------------------------------------

    def add_root(self, root: Node) -> Node:
        if self.root is not None:
            raise TopologyError("topology already has a root complex")
        if root.kind is not NodeKind.ROOT_COMPLEX:
            raise TopologyError("tree root must be a root complex")
        self.root = root
        self._nodes[root.node_id] = root
        self._children[root.node_id] = []
        return root

    def attach(
        self,
        node: Node,
        parent_id: str,
        gen: PcieGen = PcieGen.GEN3,
        lanes: int = 16,
    ) -> Node:
        """Attach ``node`` below ``parent_id`` with a ``gen`` x``lanes`` link."""
        if self.root is None:
            raise TopologyError("add a root complex before attaching nodes")
        if node.node_id in self._nodes:
            raise TopologyError(f"duplicate node id: {node.node_id}")
        parent = self.node(parent_id)
        if parent.kind is NodeKind.ENDPOINT:
            raise TopologyError(
                f"cannot attach below endpoint {parent_id}: endpoints are leaves"
            )
        if parent.max_links is not None:
            used = len(self._children[parent_id])
            if parent is not self.root:
                used += 1  # the parent's own uplink
            if used >= parent.max_links:
                raise TopologyError(
                    f"{parent_id} has no free link "
                    f"(max_links={parent.max_links})"
                )
        self._nodes[node.node_id] = node
        self._parent[node.node_id] = parent_id
        self._children[parent_id].append(node.node_id)
        self._children.setdefault(node.node_id, [])
        self._links[node.node_id] = Link(
            child_id=node.node_id, parent_id=parent_id, gen=gen, lanes=lanes
        )
        return node

    def upgrade_links(self, gen: PcieGen) -> None:
        """Replace every link's generation (used for the Gen4 sweep)."""
        for child_id, link in list(self._links.items()):
            self._links[child_id] = Link(
                child_id=link.child_id,
                parent_id=link.parent_id,
                gen=gen,
                lanes=link.lanes,
            )

    # -- queries -------------------------------------------------------

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node: {node_id}") from None

    def parent_of(self, node_id: str) -> Optional[str]:
        self.node(node_id)
        return self._parent.get(node_id)

    def children_of(self, node_id: str) -> List[str]:
        self.node(node_id)
        return list(self._children.get(node_id, []))

    def uplink_of(self, node_id: str) -> Link:
        """The link connecting ``node_id`` to its parent."""
        if node_id not in self._links:
            raise TopologyError(f"node {node_id} has no uplink (is it the root?)")
        return self._links[node_id]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def endpoints(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.kind is NodeKind.ENDPOINT]

    def endpoints_where(self, predicate) -> List[Node]:
        return [n for n in self.endpoints() if predicate(n)]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- tree walks ----------------------------------------------------

    def ancestors(self, node_id: str) -> List[str]:
        """Ancestor ids from the node's parent up to (and including) the
        root, in bottom-up order."""
        out: List[str] = []
        cur = self.parent_of(node_id)
        while cur is not None:
            out.append(cur)
            cur = self._parent.get(cur)
        return out

    def path_to_root(self, node_id: str) -> List[str]:
        """Node ids from ``node_id`` (inclusive) up to the root."""
        return [node_id] + self.ancestors(node_id)

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """The deepest node whose subtree contains both ``a`` and ``b``."""
        path_a = self.path_to_root(a)
        set_a = set(path_a)
        for candidate in self.path_to_root(b):
            if candidate in set_a:
                return candidate
        raise TopologyError(f"{a} and {b} share no ancestor")

    def depth(self, node_id: str) -> int:
        return len(self.ancestors(node_id))

    def subtree(self, node_id: str) -> Iterator[Node]:
        """All nodes in the subtree rooted at ``node_id`` (preorder)."""
        stack = [node_id]
        while stack:
            cur = stack.pop()
            yield self.node(cur)
            stack.extend(reversed(self._children.get(cur, [])))

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`TopologyError` if a structural invariant fails."""
        if self.root is None:
            raise TopologyError("topology has no root complex")
        roots = [
            n for n in self._nodes.values() if n.kind is NodeKind.ROOT_COMPLEX
        ]
        if len(roots) != 1:
            raise TopologyError(f"expected exactly 1 root complex, found {len(roots)}")
        reached = {n.node_id for n in self.subtree(self.root.node_id)}
        if reached != set(self._nodes):
            orphans = set(self._nodes) - reached
            raise TopologyError(f"orphan nodes not reachable from root: {sorted(orphans)}")
        for node in self._nodes.values():
            kids = self._children.get(node.node_id, [])
            if node.kind is NodeKind.ENDPOINT and kids:
                raise TopologyError(f"endpoint {node.node_id} has children")
            if node.max_links is not None:
                used = len(kids) + (0 if node is self.root else 1)
                if used > node.max_links:
                    raise TopologyError(
                        f"{node.node_id} uses {used} links, max is {node.max_links}"
                    )


def chain_boxes(
    topology: PcieTopology,
    boxes: Iterable[Node],
    gen: PcieGen = PcieGen.GEN3,
    lanes: int = 16,
) -> None:
    """Chain box-level switches from the root complex, DGX-2 style (§III-A).

    Each "box" has an uplink and a downlink; scaling is achieved by
    daisy-chaining boxes: the first box's uplink goes to the RC, each
    subsequent box's uplink goes to the previous box's downlink.  The
    downstream switch of each box is attached by the caller; this helper
    only wires the chain of top-level box switches.
    """
    if topology.root is None:
        raise TopologyError("topology has no root complex")
    prev = topology.root.node_id
    for box in boxes:
        topology.attach(box, prev, gen=gen, lanes=lanes)
        prev = box.node_id
