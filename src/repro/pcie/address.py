"""PCIe enumeration: assign address ranges to nodes.

At boot, the host enumerates the PCIe tree depth-first and programs every
switch port with the address window of the subtree behind it (§IV-C of the
paper: "the system assigns a unique PCIe address range to each PCIe device
and port of PCIe switches").  Later, switches *forward* packets toward the
port whose window contains the destination address rather than broadcasting
them — this is precisely the property that makes peer-to-peer transfers
stay below the lowest common ancestor switch.

We reproduce that scheme: each endpoint receives a fixed-size BAR window
and each internal node's window is the union of its children's windows.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import TopologyError
from repro.pcie.topology import NodeKind, PcieTopology

#: Default BAR window granted to each endpoint, in bytes of address space.
#: The absolute size is irrelevant to routing; only disjointness and
#: containment matter.
DEFAULT_WINDOW = 1 << 28  # 256 MiB


def enumerate_topology(
    topology: PcieTopology, window: int = DEFAULT_WINDOW, base: int = 1 << 32
) -> Dict[str, range]:
    """Assign address ranges to every node; returns ``{node_id: range}``.

    The assignment is a DFS: an endpoint gets the next free ``window``
    bytes; an internal node gets ``[min(child bases), max(child limits))``.
    Internal nodes with no endpoints below them get an empty-but-valid
    one-byte window so that ``enumerated`` holds for them too.
    """
    if window <= 0:
        raise TopologyError(f"window must be positive, got {window}")
    topology.validate()
    assert topology.root is not None
    cursor = base
    assignments: Dict[str, range] = {}

    def visit(node_id: str) -> range:
        nonlocal cursor
        node = topology.node(node_id)
        children = topology.children_of(node_id)
        if node.kind is NodeKind.ENDPOINT or not children:
            lo, hi = cursor, cursor + window
            cursor = hi
        else:
            child_ranges = [visit(c) for c in children]
            lo = min(r.start for r in child_ranges)
            hi = max(r.stop for r in child_ranges)
        node.addr_base, node.addr_limit = lo, hi
        assignments[node_id] = range(lo, hi)
        return range(lo, hi)

    visit(topology.root.node_id)
    _check_disjoint_siblings(topology)
    return assignments


def _check_disjoint_siblings(topology: PcieTopology) -> None:
    """Invariant: sibling subtrees own disjoint address windows."""
    for node in topology.nodes():
        children = topology.children_of(node.node_id)
        windows = sorted(
            (topology.node(c).addr_base, topology.node(c).addr_limit, c)
            for c in children
        )
        for (lo1, hi1, c1), (lo2, hi2, c2) in zip(windows, windows[1:]):
            if hi1 > lo2:
                raise TopologyError(
                    f"sibling windows overlap: {c1} [{lo1},{hi1}) vs {c2} [{lo2},{hi2})"
                )


def resolve_address(topology: PcieTopology, address: int) -> str:
    """Find the endpoint owning ``address`` (the device a packet lands on)."""
    assert topology.root is not None
    node = topology.root
    if not node.contains_address(address):
        raise TopologyError(f"address {address:#x} is outside the tree")
    while node.kind is not NodeKind.ENDPOINT:
        for child_id in topology.children_of(node.node_id):
            child = topology.node(child_id)
            if child.contains_address(address):
                node = child
                break
        else:
            raise TopologyError(
                f"address {address:#x} maps to no endpoint under {node.node_id}"
            )
    return node.node_id
