"""Packet routing over the PCIe tree.

Two routing implementations are provided:

* :func:`route` computes the tree path via the lowest common ancestor —
  the ground truth for what a correctly programmed switch fabric does;
* :func:`forward_path` simulates hop-by-hop *address-based forwarding*:
  at each node the packet is sent toward the port whose enumerated window
  contains the destination address, exactly as a real switch does.

Tests assert the two agree on every topology, which checks that
enumeration produced windows consistent with the tree shape.

Routes are returned as sequences of :class:`~repro.pcie.link.DirectedLink`
so the traffic solver can account each direction of each link separately.
"""

from __future__ import annotations

from typing import List

from repro.errors import RoutingError
from repro.pcie.link import DirectedLink, LinkDirection
from repro.pcie.topology import NodeKind, PcieTopology


def route(topology: PcieTopology, src: str, dst: str) -> List[DirectedLink]:
    """The directed links a transfer ``src``→``dst`` traverses.

    The path climbs from ``src`` to the lowest common ancestor (UP hops),
    then descends to ``dst`` (DOWN hops).  A same-node route is empty.
    """
    if src == dst:
        return []
    topology.node(src)
    topology.node(dst)
    lca = topology.lowest_common_ancestor(src, dst)

    hops: List[DirectedLink] = []
    cur = src
    while cur != lca:
        link = topology.uplink_of(cur)
        hops.append(link.directed(LinkDirection.UP))
        parent = topology.parent_of(cur)
        assert parent is not None
        cur = parent

    down: List[DirectedLink] = []
    cur = dst
    while cur != lca:
        link = topology.uplink_of(cur)
        down.append(link.directed(LinkDirection.DOWN))
        parent = topology.parent_of(cur)
        assert parent is not None
        cur = parent
    hops.extend(reversed(down))
    return hops


def forward_path(topology: PcieTopology, src: str, dst: str) -> List[str]:
    """Hop-by-hop node ids visited by address-based switch forwarding.

    Requires the topology to have been enumerated
    (:func:`repro.pcie.address.enumerate_topology`).  Mirrors real switch
    behaviour: if the destination window is below one of my downstream
    ports, forward down that port; otherwise forward out the uplink.
    """
    dst_node = topology.node(dst)
    if not dst_node.enumerated:
        raise RoutingError(
            "topology must be enumerated before address-based forwarding"
        )
    target = dst_node.addr_base
    visited = [src]
    cur = src
    max_hops = len(topology) + 1
    for _ in range(max_hops):
        if cur == dst:
            return visited
        node = topology.node(cur)
        next_hop = None
        if node.kind is not NodeKind.ENDPOINT:
            for child_id in topology.children_of(cur):
                if topology.node(child_id).contains_address(target):
                    next_hop = child_id
                    break
        if next_hop is None:
            next_hop = topology.parent_of(cur)
            if next_hop is None:
                raise RoutingError(
                    f"packet for {dst} stranded at root {cur}: "
                    f"no port owns address {target:#x}"
                )
        visited.append(next_hop)
        cur = next_hop
    raise RoutingError(f"forwarding loop routing {src}->{dst}")


def crosses_root_complex(topology: PcieTopology, src: str, dst: str) -> bool:
    """True when a ``src``→``dst`` transfer traverses the root complex.

    This is the quantity TrainBox's clustering optimization (§IV-D)
    minimizes: transfers whose LCA is the RC create the single-point
    hotspot the paper measures in Figure 10c.
    """
    assert topology.root is not None
    if src == dst:
        return False
    return topology.lowest_common_ancestor(src, dst) == topology.root.node_id


def route_nodes(topology: PcieTopology, src: str, dst: str) -> List[str]:
    """Node ids visited along :func:`route` (including both endpoints)."""
    if src == dst:
        return [src]
    lca = topology.lowest_common_ancestor(src, dst)
    up = []
    cur = src
    while cur != lca:
        up.append(cur)
        parent = topology.parent_of(cur)
        assert parent is not None
        cur = parent
    down = []
    cur = dst
    while cur != lca:
        down.append(cur)
        parent = topology.parent_of(cur)
        assert parent is not None
        cur = parent
    return up + [lca] + list(reversed(down))
