"""Host DRAM model.

Host memory matters to the paper in one way only: its finite bandwidth.
Every staged copy in the baseline datapath (SSD→DRAM, CPU passes over the
data, DRAM→accelerator DMA) consumes bytes/second of it, and Figure 10b
shows demand up to 17.9× what a DGX-2 provides (239 GB/s).  Capacity is
tracked too so buffer sizing can be sanity-checked, but bandwidth is the
modeled bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro import units

#: DGX-2 host memory bandwidth the paper normalizes against (§III-C).
DGX2_MEMORY_BANDWIDTH = 239 * units.GB


@dataclass
class HostDram:
    """Host memory: a bandwidth (and capacity) budget behind the RC."""

    bandwidth: float = DGX2_MEMORY_BANDWIDTH
    capacity: float = 1.5 * units.TB

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive: {self.bandwidth}")
        if self.capacity <= 0:
            raise ConfigError(f"capacity must be positive: {self.capacity}")

    def time_for(self, traffic_bytes: float) -> float:
        """Seconds to move ``traffic_bytes`` through the memory system."""
        if traffic_bytes < 0:
            raise ConfigError("traffic must be >= 0")
        return traffic_bytes / self.bandwidth

    def throughput_for(self, bytes_per_item: float) -> float:
        """Items/s sustained when each item moves ``bytes_per_item``."""
        if bytes_per_item <= 0:
            raise ConfigError("bytes_per_item must be positive")
        return self.bandwidth / bytes_per_item
