"""FPGA data-preparation accelerator and its resource model.

The paper prototypes the data preparation accelerator on a Xilinx XCVU9P
(§VI-A) and reports per-engine LUT/FF/BRAM/DSP utilization in Table II
(image pipeline) and Table III (audio pipeline).  This module reproduces
those tables as data, validates that a configured set of engines fits the
part, and models the device's system-level behaviour:

* **compute**: the FPGA's throughput for a preparation pipeline is derived
  from the same per-op cycle costs the CPU model uses, scaled by per-op
  FPGA speedups (see :mod:`repro.dataprep.cost`), so CPU and FPGA rates
  come from one consistent cost model;
* **I/O**: one PCIe x16 endpoint (accounted by the topology) plus an
  Ethernet port toward the prep-pool (§IV-D: 100 Gb/s);
* **buffering**: on-board DRAM replaces host DRAM for staging, which is
  what makes the P2P datapath host-memory-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.devices.base import Device, DeviceKind
from repro.errors import CapacityError, ConfigError
from repro import units


@dataclass(frozen=True)
class EngineResources:
    """FPGA resources consumed by one engine (one row of Table II/III)."""

    name: str
    luts: float
    ffs: float
    brams: float
    dsps: float

    def __add__(self, other: "EngineResources") -> "EngineResources":
        return EngineResources(
            name=f"{self.name}+{other.name}",
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            dsps=self.dsps + other.dsps,
        )


#: XCVU9P device capacity (Xilinx DS923): the denominators that reproduce
#: the percentages printed in Tables II and III.
XCVU9P_CAPACITY = EngineResources(
    name="xcvu9p", luts=1_182_000, ffs=2_364_000, brams=2_160, dsps=6_840
)


# Rows of Table II (image pipeline), counts as published.
_IMAGE_ENGINES = [
    EngineResources("jpeg_decoder", 704_000, 665_000, 0, 1_040),
    EngineResources("crop", 500, 300, 0, 27),
    EngineResources("mirror", 6_500, 4_700, 0, 381),
    EngineResources("gaussian_noise", 24_500, 33_000, 80, 400),
    EngineResources("cast", 5_700, 3_000, 0, 240),
    EngineResources("ethernet_protocol", 166_000, 169_000, 1_024, 0),
    EngineResources("p2p_handler", 22_700, 24_700, 153, 0),
]

# Rows of Table III (audio pipeline).
_AUDIO_ENGINES = [
    EngineResources("spectrogram", 622_000, 755_000, 228, 0),
    EngineResources("masking", 21_000, 17_000, 53, 260),
    EngineResources("norm", 14_000, 11_000, 0, 0),
    EngineResources("mel_filter_bank", 103_000, 119_000, 208, 572),
    EngineResources("ethernet_protocol", 166_000, 169_000, 1_024, 0),
    EngineResources("p2p_handler", 22_700, 24_700, 153, 0),
]


class FpgaResourceModel:
    """A set of engines placed on one FPGA, checked against capacity."""

    def __init__(
        self,
        engines: Iterable[EngineResources],
        capacity: EngineResources = XCVU9P_CAPACITY,
        label: str = "fpga",
    ) -> None:
        self.engines: List[EngineResources] = list(engines)
        self.capacity = capacity
        self.label = label
        names = [e.name for e in self.engines]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate engine names: {names}")
        self.check_fits()

    def total(self) -> EngineResources:
        total = EngineResources("total", 0, 0, 0, 0)
        for engine in self.engines:
            total = total + engine
        return EngineResources("total", total.luts, total.ffs, total.brams, total.dsps)

    def utilization(self) -> Dict[str, float]:
        """Fraction of each resource class used (0..1)."""
        total = self.total()
        return {
            "luts": total.luts / self.capacity.luts,
            "ffs": total.ffs / self.capacity.ffs,
            "brams": total.brams / self.capacity.brams,
            "dsps": total.dsps / self.capacity.dsps,
        }

    def engine_utilization(self) -> Dict[str, Dict[str, float]]:
        """Per-engine utilization fractions (the table body)."""
        return {
            engine.name: {
                "luts": engine.luts / self.capacity.luts,
                "ffs": engine.ffs / self.capacity.ffs,
                "brams": engine.brams / self.capacity.brams,
                "dsps": engine.dsps / self.capacity.dsps,
            }
            for engine in self.engines
        }

    def check_fits(self) -> None:
        """Raise :class:`CapacityError` if the design exceeds the part."""
        total = self.total()
        for attr in ("luts", "ffs", "brams", "dsps"):
            used = getattr(total, attr)
            avail = getattr(self.capacity, attr)
            if used > avail:
                raise CapacityError(
                    f"{self.label}: {attr} over capacity ({used} > {avail})"
                )

    def with_engine(self, engine: EngineResources) -> "FpgaResourceModel":
        """A new model with one more engine (partial reconfiguration adds
        a computation engine while interfacing logic stays, §V-C)."""
        return FpgaResourceModel(
            self.engines + [engine], capacity=self.capacity, label=self.label
        )


def image_resource_model() -> FpgaResourceModel:
    """The Table II configuration (image data preparation)."""
    return FpgaResourceModel(_IMAGE_ENGINES, label="image-prep-fpga")


def audio_resource_model() -> FpgaResourceModel:
    """The Table III configuration (audio data preparation)."""
    return FpgaResourceModel(_AUDIO_ENGINES, label="audio-prep-fpga")


@dataclass
class FpgaDevice(Device):
    """One FPGA data-preparation accelerator as a system component.

    ``profile_name`` selects the per-op speedup table in
    :mod:`repro.dataprep.cost` used to derive the device's preparation
    throughput from pipeline cycle costs.
    """

    profile_name: str = "fpga"
    ethernet_bandwidth: float = 12.5 * units.GB  # 100 Gb/s (§IV-D)
    ethernet_ports: int = 1
    onboard_dram: float = 64 * units.GB
    onboard_dram_bandwidth: float = 77 * units.GB  # 4x DDR4-2400 DIMMs
    resources: FpgaResourceModel = field(default_factory=image_resource_model)

    def __post_init__(self) -> None:
        if self.ethernet_ports < 0:
            raise ConfigError("ethernet_ports must be >= 0")
        if self.ethernet_bandwidth <= 0:
            raise ConfigError("ethernet_bandwidth must be positive")
        self.kind = DeviceKind.PREP_ACCELERATOR

    @property
    def pool_link_bandwidth(self) -> float:
        """Aggregate Ethernet bandwidth toward the prep-pool (bytes/s)."""
        return self.ethernet_bandwidth * self.ethernet_ports
