"""NVMe SSD model.

An SSD contributes three things to the system model:

* a **media read rate** limiting how many compressed bytes/s it serves;
* **host driver cycles** per I/O command in the baseline (user/kernel
  switching, NVMe doorbells and completions — §V-A notes TrainBox removes
  this by letting the FPGA's P2P handler issue NVMe commands directly);
* its **PCIe link**, accounted by the topology like any other endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import Device, DeviceKind
from repro.errors import ConfigError
from repro import units

#: Sequential read rate of a datacenter NVMe drive (bytes/s).
DEFAULT_READ_BANDWIDTH = 3.2 * units.GB

#: Host CPU cycles per NVMe command in the baseline software stack
#: (submission + interrupt + completion handling).
DEFAULT_DRIVER_CYCLES_PER_CMD = 12_000.0

#: Bytes moved per NVMe command (a typical large sequential read).
DEFAULT_IO_SIZE = 128 * units.KIB


@dataclass
class NvmeSsd(Device):
    """A single NVMe SSD."""

    read_bandwidth: float = DEFAULT_READ_BANDWIDTH
    capacity: float = 4 * units.TB
    driver_cycles_per_cmd: float = DEFAULT_DRIVER_CYCLES_PER_CMD
    io_size: float = DEFAULT_IO_SIZE

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0:
            raise ConfigError("read_bandwidth must be positive")
        if self.io_size <= 0:
            raise ConfigError("io_size must be positive")
        self.kind = DeviceKind.SSD

    def read_time(self, nbytes: float) -> float:
        """Seconds of media time to read ``nbytes``."""
        if nbytes < 0:
            raise ConfigError("cannot read a negative byte count")
        return nbytes / self.read_bandwidth

    def host_driver_cycles(self, nbytes: float) -> float:
        """Host CPU cycles the *baseline* software stack spends to read
        ``nbytes`` through the kernel NVMe driver.  Zero under P2P, where
        the prep accelerator issues commands itself."""
        if nbytes < 0:
            raise ConfigError("cannot read a negative byte count")
        commands = max(1.0, nbytes / self.io_size)
        return commands * self.driver_cycles_per_cmd
