"""Device models.

Every device the paper's server contains is modeled here:

* :mod:`repro.devices.accelerator` — TPU-v3-class neural network
  accelerators (compute throughput, batch-efficiency curve, PCIe ingest);
* :mod:`repro.devices.ssd` — NVMe SSDs (media read rate, host driver cost);
* :mod:`repro.devices.cpu` — the host CPU (finite cycles/second budget);
* :mod:`repro.devices.dram` — host DRAM (finite bytes/second budget);
* :mod:`repro.devices.fpga` — FPGA data-preparation accelerators including
  the Table II / Table III resource model (LUT/FF/BRAM/DSP per engine);
* :mod:`repro.devices.gpu_prep` — the GPU data-preparation alternative the
  paper compares against in Figure 21 (poor at irregular decode).

Device models are deliberately *passive*: they expose capacities and
per-operation costs; the engines in :mod:`repro.core` decide how demand is
placed on them.
"""

from repro.devices.base import Device, DeviceKind
from repro.devices.accelerator import AcceleratorSpec, NNAccelerator
from repro.devices.cpu import HostCpu
from repro.devices.dram import HostDram
from repro.devices.fpga import (
    EngineResources,
    FpgaDevice,
    FpgaResourceModel,
    XCVU9P_CAPACITY,
    audio_resource_model,
    image_resource_model,
)
from repro.devices.gpu_prep import GpuPrepDevice
from repro.devices.ssd import NvmeSsd

__all__ = [
    "AcceleratorSpec",
    "Device",
    "DeviceKind",
    "EngineResources",
    "FpgaDevice",
    "FpgaResourceModel",
    "GpuPrepDevice",
    "HostCpu",
    "HostDram",
    "NNAccelerator",
    "NvmeSsd",
    "XCVU9P_CAPACITY",
    "audio_resource_model",
    "image_resource_model",
]
