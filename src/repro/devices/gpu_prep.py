"""GPU as a data-preparation accelerator (the Figure 21 comparator).

The paper argues GPUs are a poor fit for data formatting because the
Huffman phase of JPEG decoding has no good parallel algorithm (§V-B,
citing [40]) — which is why even NVIDIA DALI leaves decode on the CPU.
The GPU prep device therefore uses a speedup profile in
:mod:`repro.dataprep.cost` with near-CPU decode performance but high
throughput on the regular, data-parallel ops (crop, mirror, noise, cast,
filter banks).  GPUs also cannot initiate P2P against arbitrary devices
("such functionality is limited to selected device pairs"), so server
builders never place them on a host-memory-free datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import Device, DeviceKind


@dataclass
class GpuPrepDevice(Device):
    """A GPU used for data preparation offload."""

    profile_name: str = "gpu"
    supports_generic_p2p: bool = False

    def __post_init__(self) -> None:
        self.kind = DeviceKind.PREP_ACCELERATOR
