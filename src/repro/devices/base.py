"""Common device abstractions."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import ClassVar


class DeviceKind(enum.Enum):
    """What a PCIe endpoint is, used when building box layouts."""

    NN_ACCELERATOR = "nn_accelerator"
    PREP_ACCELERATOR = "prep_accelerator"
    SSD = "ssd"
    NIC = "nic"


@dataclass
class Device:
    """Base class for all endpoint device models.

    ``device_id`` is unique per instance and doubles as the id of the PCIe
    endpoint node the device is attached to, so device ↔ topology lookups
    are trivial.
    """

    device_id: str
    kind: DeviceKind = field(init=False)

    _counter: ClassVar[itertools.count] = itertools.count()

    @classmethod
    def fresh_id(cls, prefix: str) -> str:
        """Generate a unique device id with a readable prefix."""
        return f"{prefix}{next(cls._counter)}"
