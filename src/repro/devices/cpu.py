"""Host CPU model.

The paper's profiling host is a two-socket Xeon machine with 48 physical
cores (§III-B1), the same budget as NVIDIA's DGX-2.  The model is a plain
cycle budget: ``cores × frequency`` cycles per second usable for data
preparation, with a parallel efficiency knob for the lock/batching losses
the paper's baseline already optimizes ("batching, software pipelining and
data partitioning for less lock contention").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro import units


@dataclass
class HostCpu:
    """A pool of host CPU cores.

    Not a PCIe endpoint: the CPU sits behind the root complex together
    with DRAM, so it is modeled as a host-side resource rather than a
    tree node.
    """

    cores: int = 48
    frequency: float = 2.5 * units.GHZ
    parallel_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"cores must be positive: {self.cores}")
        if self.frequency <= 0:
            raise ConfigError(f"frequency must be positive: {self.frequency}")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ConfigError(
                f"parallel_efficiency must be in (0, 1]: {self.parallel_efficiency}"
            )

    @property
    def cycle_budget(self) -> float:
        """Usable cycles per second across all cores."""
        return self.cores * self.frequency * self.parallel_efficiency

    def time_for(self, cycles: float) -> float:
        """Seconds to execute ``cycles`` perfectly spread over all cores."""
        if cycles < 0:
            raise ConfigError("cycles must be >= 0")
        return cycles / self.cycle_budget

    def throughput_for(self, cycles_per_item: float) -> float:
        """Items/s this CPU sustains when each item costs ``cycles_per_item``."""
        if cycles_per_item <= 0:
            raise ConfigError("cycles_per_item must be positive")
        return self.cycle_budget / cycles_per_item

    def cores_required(self, cycles_per_second: float) -> float:
        """Fractional core count needed to sustain a cycle demand."""
        if cycles_per_second < 0:
            raise ConfigError("cycle demand must be >= 0")
        return cycles_per_second / (self.frequency * self.parallel_efficiency)
