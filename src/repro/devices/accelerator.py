"""Neural network accelerator model (TPU-v3-8 class).

The paper treats the NN accelerator as a measured black box: it profiled
TPU v3-8 throughput per workload on Google Cloud (Table I) and used those
numbers inside its system simulator (§VI-A).  We do the same, with one
addition needed for the batch-size sweep of Figure 20: a saturating
batch-efficiency curve so that small batches under-utilize the device
("better efficiency of neural network accelerators, i.e. higher resource
utilization with a larger batch").

The curve is ``eff(B) = B / (B + B_half)``; the spec's ``sample_rate`` is
interpreted as the measured throughput at ``reference_batch``, and the
peak rate is back-solved so that the model reproduces Table I exactly at
the reference point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import Device, DeviceKind
from repro.errors import ConfigError


@dataclass(frozen=True)
class AcceleratorSpec:
    """Performance characteristics of one NN accelerator.

    Attributes:
        name: accelerator family ("tpu-v3-8", "titan-xp", ...).
        sample_rate: measured samples/second at ``reference_batch``.
        reference_batch: the per-accelerator batch at which ``sample_rate``
            was measured (Table I uses the largest batch that fits).
        batch_half: half-saturation batch size of the efficiency curve;
            smaller values mean the device reaches peak efficiency with
            smaller batches.
        ingest_bandwidth: bytes/s the device can absorb over its PCIe
            link while computing (DMA engine limit).
    """

    name: str
    sample_rate: float
    reference_batch: int
    batch_half: int = 256
    ingest_bandwidth: float = 16e9

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigError(f"sample_rate must be positive: {self.sample_rate}")
        if self.reference_batch <= 0:
            raise ConfigError(
                f"reference_batch must be positive: {self.reference_batch}"
            )
        if self.batch_half <= 0:
            raise ConfigError(f"batch_half must be positive: {self.batch_half}")

    # -- batch-efficiency model -----------------------------------------

    def efficiency(self, batch: int) -> float:
        """Fraction of peak throughput achieved at per-device batch ``batch``."""
        if batch <= 0:
            raise ConfigError(f"batch must be positive: {batch}")
        return batch / (batch + self.batch_half)

    @property
    def peak_rate(self) -> float:
        """Asymptotic samples/s at infinite batch."""
        return self.sample_rate / self.efficiency(self.reference_batch)

    def throughput(self, batch: int) -> float:
        """Samples/s at per-device batch ``batch``."""
        return self.peak_rate * self.efficiency(batch)

    def compute_time(self, batch: int) -> float:
        """Seconds to run forward+backward on one batch."""
        return batch / self.throughput(batch)


@dataclass
class NNAccelerator(Device):
    """A neural network accelerator instance attached to the PCIe tree."""

    spec: AcceleratorSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ConfigError("NNAccelerator requires a spec")
        self.kind = DeviceKind.NN_ACCELERATOR

    def compute_time(self, batch: int) -> float:
        return self.spec.compute_time(batch)
