"""Physical unit helpers and hardware constants.

All bandwidths inside the library are expressed in **bytes per second**,
all sizes in **bytes**, all times in **seconds**, and all compute rates in
**cycles per second** unless a name explicitly says otherwise.  The helpers
here exist so that calibration constants can be written in the units the
paper uses (GB/s, Gb/s, MB, KB, GHz) without sprinkling powers of ten
throughout the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Size units (decimal, matching how vendors quote link/storage bandwidth).
# ---------------------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary sizes, used when talking about in-memory buffers.
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

# ---------------------------------------------------------------------------
# Rate units.
# ---------------------------------------------------------------------------

MHZ = 1_000_000
GHZ = 1_000_000_000


def gbps(value: float) -> float:
    """Convert *gigabits* per second to bytes per second."""
    return value * 1e9 / 8.0


def gb_s(value: float) -> float:
    """Convert gigabytes per second to bytes per second."""
    return value * GB


def mb_s(value: float) -> float:
    """Convert megabytes per second to bytes per second."""
    return value * MB


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def to_gb_s(value_bytes_per_s: float) -> float:
    """Express a bytes-per-second rate in GB/s (for reporting)."""
    return value_bytes_per_s / GB


def to_mb(value_bytes: float) -> float:
    """Express a byte count in MB (for reporting)."""
    return value_bytes / MB
