"""Extension: large-batch training with linear LR scaling (§II-B).

TrainBox's premise leans on the third §II-B enabler: large batches stay
accurate when the learning rate scales with them (Goyal et al., the
paper's [13]).  This runs the experiment for real on the numpy training
substrate: small batch vs 8× batch with scaled LR (+warmup) vs 8× batch
with the unscaled LR.
"""

import os

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.training.large_batch import batch_scaling_experiment


def build_figure():
    # The arms run through the sweep engine's process map; REPRO_BENCH_JOBS
    # spreads them over workers on multi-core hosts (results are
    # seed-deterministic either way).
    return batch_scaling_experiment(
        seed=1, n_jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    )


def test_ext_batch_scaling(benchmark, capsys):
    result = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    table = format_table(
        ["arm", "final test accuracy"],
        [
            ["small batch (8)", f"{result.small_batch:.3f}"],
            ["8x batch, 8x LR + warmup", f"{result.large_batch_scaled_lr:.3f}"],
            ["8x batch, unscaled LR", f"{result.large_batch_unscaled_lr:.3f}"],
        ],
    )
    emit(
        capsys,
        "Extension — large-batch LR scaling (§II-B enabler)",
        table
        + "\n\npaper's premise: 'using a proper learning rate can remove "
        "such instability' — scaled tracks small-batch, unscaled undertrains",
    )
    assert result.scaling_recovers_accuracy()
    assert result.unscaled_underperforms()
