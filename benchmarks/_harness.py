"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints it in a plain-text form (the numbers the paper
plots), then times the underlying computation with pytest-benchmark.
Output is emitted through ``emit`` so it stays visible under pytest's
capture.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def emit(capsys, title: str, body: str) -> None:
    """Print a titled block, bypassing pytest's output capture."""
    with capsys.disabled():
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)
        print(body)


#: Accelerator counts swept by the scalability figures.
SCALE_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: The evaluation's headline scale.
TARGET_SCALE = 256
