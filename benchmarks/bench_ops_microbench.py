"""Microbenchmarks of the functional data-preparation kernels.

These time the package's *actual* numpy implementations with
pytest-benchmark — the empirical grounding behind the claim that decode
dominates image preparation and the STFT dominates audio preparation
(§III-C), independent of the calibrated cycle constants.
"""

import numpy as np
import pytest

from repro.dataprep.jpeg import decode as jpeg_decode, encode as jpeg_encode
from repro.dataprep.ops_audio import MelFilterBank, Normalize, Spectrogram
from repro.dataprep.ops_image import CastToFloat, GaussianNoise, Mirror, RandomCrop
from repro.dataprep.png import decode as png_decode, encode as png_encode


@pytest.fixture(scope="module")
def image():
    rng = np.random.default_rng(0)
    h, w = 64, 64
    x = np.linspace(0, 255, w)[None, :] * np.ones((h, 1))
    img = np.stack([x, x[::-1], np.full((h, w), 120.0)], axis=-1)
    return np.clip(img + rng.normal(0, 6, img.shape), 0, 255).astype(np.uint8)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(1)


def test_kernel_jpeg_encode(benchmark, image):
    payload = benchmark(jpeg_encode, image, 80)
    assert len(payload) < image.nbytes


def test_kernel_jpeg_decode(benchmark, image):
    payload = jpeg_encode(image, quality=80)
    out = benchmark(jpeg_decode, payload)
    assert out.shape == image.shape


def test_kernel_png_decode(benchmark, image):
    payload = png_encode(image)
    out = benchmark(png_decode, payload)
    assert np.array_equal(out, image)


def test_kernel_crop(benchmark, image, rng):
    crop = RandomCrop(48, 48)
    out = benchmark(crop.apply, image, rng)
    assert out.shape == (48, 48, 3)


def test_kernel_mirror(benchmark, image, rng):
    mirror = Mirror(probability=1.0)
    out = benchmark(mirror.apply, image, rng)
    assert out.shape == image.shape


def test_kernel_noise(benchmark, image, rng):
    noise = GaussianNoise(4.0)
    out = benchmark(noise.apply, image, rng)
    assert out.dtype == np.uint8


def test_kernel_cast(benchmark, image, rng):
    cast = CastToFloat()
    out = benchmark(cast.apply, image, rng)
    assert out.dtype == np.float32


def test_kernel_spectrogram(benchmark, rng):
    signal = (rng.normal(0, 0.1, 16_000) * 32767).astype(np.int16)
    spec_op = Spectrogram()
    out = benchmark(spec_op.apply, signal, rng)
    assert out.shape[1] == 257


def test_kernel_mel(benchmark, rng):
    power = rng.random((100, 257)).astype(np.float32)
    mel = MelFilterBank(n_mels=128)
    out = benchmark(mel.apply, power, rng)
    assert out.shape == (100, 128)


def test_kernel_norm(benchmark, rng):
    feats = rng.normal(size=(100, 128)).astype(np.float32)
    norm = Normalize()
    out = benchmark(norm.apply, feats, rng)
    assert out.shape == feats.shape


def test_decode_dominates_image_prep(benchmark, image, rng):
    """The empirical version of Figure 11a's CPU story: decoding costs
    more wall time than all the elementwise ops combined."""
    import time

    payload = jpeg_encode(image, quality=80)

    def clock(fn, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    t_decode = benchmark.pedantic(
        lambda: clock(jpeg_decode, payload), rounds=1, iterations=1
    )
    t_elementwise = (
        clock(RandomCrop(48, 48).apply, image, rng)
        + clock(Mirror(1.0).apply, image, rng)
        + clock(GaussianNoise(4.0).apply, image, rng)
        + clock(CastToFloat().apply, image, rng)
    )
    assert t_decode > t_elementwise
