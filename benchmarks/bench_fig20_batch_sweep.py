"""Figure 20: TrainBox vs baseline across batch sizes (ResNet-50, 256
accelerators).

Paper shape: TrainBox wins at every batch size and its speed-up grows
with the batch (better accelerator efficiency and relatively cheaper
synchronization at large batches).
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_series
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
BATCHES = (8, 32, 128, 512, 2048, 8192)


def build_figure():
    base_arch = ArchitectureConfig.baseline()
    tb_arch = ArchitectureConfig.trainbox()
    one = simulate(
        TrainingScenario(RESNET, base_arch, 1, batch_size=BATCHES[0])
    ).throughput
    baseline = []
    trainbox = []
    for batch in BATCHES:
        baseline.append(
            simulate(
                TrainingScenario(RESNET, base_arch, TARGET_SCALE, batch_size=batch)
            ).throughput
            / one
        )
        trainbox.append(
            simulate(
                TrainingScenario(RESNET, tb_arch, TARGET_SCALE, batch_size=batch)
            ).throughput
            / one
        )
    return baseline, trainbox


def test_fig20_batch_sweep(benchmark, capsys):
    baseline, trainbox = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    speedups = [t / b for t, b in zip(trainbox, baseline)]
    emit(
        capsys,
        "Figure 20 — normalized throughput vs batch size (ResNet-50, 256 acc)",
        "\n".join(
            [
                format_series("baseline ", BATCHES, baseline),
                format_series("trainbox ", BATCHES, trainbox),
                format_series("speedup  ", BATCHES, speedups),
            ]
        )
        + "\n\npaper: TrainBox wins at every batch, more at larger batches",
    )
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]
