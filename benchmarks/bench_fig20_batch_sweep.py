"""Figure 20: TrainBox vs baseline across batch sizes (ResNet-50, 256
accelerators).

Paper shape: TrainBox wins at every batch size and its speed-up grows
with the batch (better accelerator efficiency and relatively cheaper
synchronization at large batches).
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_series
from repro.core.config import ArchitectureConfig
from repro.core.sweeps import SweepPoint, run_sweep
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
BATCHES = (8, 32, 128, 512, 2048, 8192)


def build_figure():
    base_arch = ArchitectureConfig.baseline()
    tb_arch = ArchitectureConfig.trainbox()
    # Batch size varies per point, so the grid is an explicit point list
    # (reference point first, then each arch across the batch axis).
    points = [SweepPoint(RESNET, base_arch, 1, batch_size=BATCHES[0])]
    points += [
        SweepPoint(RESNET, arch, TARGET_SCALE, batch_size=batch)
        for arch in (base_arch, tb_arch)
        for batch in BATCHES
    ]
    results = run_sweep(points).results
    one = results[0].throughput
    k = len(BATCHES)
    baseline = [r.throughput / one for r in results[1 : 1 + k]]
    trainbox = [r.throughput / one for r in results[1 + k :]]
    return baseline, trainbox


def test_fig20_batch_sweep(benchmark, capsys):
    baseline, trainbox = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    speedups = [t / b for t, b in zip(trainbox, baseline)]
    emit(
        capsys,
        "Figure 20 — normalized throughput vs batch size (ResNet-50, 256 acc)",
        "\n".join(
            [
                format_series("baseline ", BATCHES, baseline),
                format_series("trainbox ", BATCHES, trainbox),
                format_series("speedup  ", BATCHES, speedups),
            ]
        )
        + "\n\npaper: TrainBox wins at every batch, more at larger batches",
    )
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]
