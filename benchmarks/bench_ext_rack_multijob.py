"""Extension: rack-scale multi-job scheduling (§V-D, footnote 2).

A 32-box rack serves an image job and an audio job concurrently.  The
audio job's prep shortfall is covered by borrowing FPGAs — from the
external pool when present, otherwise from boxes the image job left
idle.  Footnote 2's observation also shows up: each job's ring spans
only its own accelerators, so co-scheduled jobs see lower
synchronization cost than one rack-filling job.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.core.rack import JobRequest, TrainBoxRack
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


def build_figure():
    scenarios = []

    rack = TrainBoxRack(n_boxes=32, external_pool_fpgas=0)
    image = rack.submit(JobRequest("image", RESNET, 128))
    audio = rack.submit(JobRequest("audio", TF_SR, 64))
    scenarios.append(("shared rack, no external pool", [image, audio], rack))

    rack2 = TrainBoxRack(n_boxes=32, external_pool_fpgas=64)
    solo = rack2.submit(JobRequest("audio-full", TF_SR, 256))
    scenarios.append(("whole rack, external pool", [solo], rack2))

    rows = []
    for label, placements, the_rack in scenarios:
        for p in placements:
            target = p.result.n_accelerators * (
                TF_SR.sample_rate if "audio" in p.job_id else RESNET.sample_rate
            )
            rows.append(
                [
                    label,
                    p.job_id,
                    p.n_boxes,
                    f"{p.result.throughput:,.0f}",
                    f"{100 * p.result.throughput / target:.1f}%",
                    p.borrowed_from_idle_boxes,
                    p.borrowed_from_external,
                    f"{p.result.sync_time * 1e3:.2f} ms",
                ]
            )
    return rows


def test_ext_rack_multijob(benchmark, capsys):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    table = format_table(
        [
            "scenario",
            "job",
            "boxes",
            "samples/s",
            "% of target",
            "idle FPGAs",
            "ext FPGAs",
            "sync",
        ],
        rows,
    )
    emit(capsys, "Extension — multi-job TrainBox rack", table)
    shared_audio = next(r for r in rows if r[1] == "audio")
    solo_audio = next(r for r in rows if r[1] == "audio-full")
    # Idle-box borrowing keeps the co-scheduled audio job at target.
    assert shared_audio[5] > 0
    assert float(shared_audio[4].rstrip("%")) > 95
    # Footnote 2: smaller jobs, cheaper synchronization.
    assert float(shared_audio[7].split()[0]) < float(solo_audio[7].split()[0])
