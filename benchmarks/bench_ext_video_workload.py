"""Extension: video as the §V-C "new input form", carried to completion.

The paper names video as the canonical functionality a user adds to the
data preparation accelerator via partial reconfiguration.  We built the
whole path — motion-JPEG clip container, decode/subsample/crop/cast
pipeline, synthetic clip dataset, an FPGA engine that fits the part —
and here run the optimization ladder on a 3D-CNN video workload.

Expected shape: video preparation (~45 M cycles/clip) is the heaviest of
all input types, so the baseline collapses hardest (≈1-2% of target at
256 accelerators) and TrainBox recovers the accelerator-bound target.
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.dataprep.cost import CPU_PROFILE, FPGA_PROFILE, GPU_PROFILE
from repro.workloads.registry import get_workload

VIDEO = get_workload("CNN-Video")
LADDER = ArchitectureConfig.figure19_ladder()


def build_figure():
    base = simulate(TrainingScenario(VIDEO, LADDER[0], TARGET_SCALE))
    target = TARGET_SCALE * VIDEO.sample_rate
    rows = []
    for arch in LADDER:
        result = simulate(TrainingScenario(VIDEO, arch, TARGET_SCALE))
        rows.append(
            [
                arch.name,
                f"{result.throughput:,.0f}",
                f"{result.throughput / base.throughput:.1f}x",
                f"{100 * result.throughput / target:.1f}%",
                result.bottleneck,
            ]
        )
    return rows


def test_ext_video_ladder(benchmark, capsys):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    cost = VIDEO.prep_pipeline().cost(VIDEO.dataset_sample_spec())
    per_device = format_table(
        ["device", "clips/s"],
        [
            [p.name, f"{p.sample_rate(cost):,.0f}"]
            for p in (CPU_PROFILE, FPGA_PROFILE, GPU_PROFILE)
        ],
    )
    emit(
        capsys,
        "Extension — CNN-Video (16-frame clips) on the optimization ladder",
        format_table(
            ["architecture", "clips/s", "speedup", "% of target", "bottleneck"],
            rows,
        )
        + f"\n\nprep cost: {cost.cpu_cycles / 1e6:.1f} M cycles/clip, "
        f"{cost.bytes_out / 1e6:.1f} MB delivered/clip\n\n" + per_device,
    )
    # The baseline collapses harder than for any Table I workload...
    assert float(rows[0][3].rstrip("%")) < 5
    # ...and TrainBox restores the accelerator-bound target.
    assert float(rows[-1][3].rstrip("%")) > 95
    assert rows[-1][4] == "accelerator"
