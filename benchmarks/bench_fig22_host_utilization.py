"""Figure 22: host-side resource utilization across the architecture
ladder, normalized to the baseline.

Paper shape: Acc clears the CPU's compute share but raises PCIe to ~2×;
P2P empties host memory; clustering (TrainBox) drops all three to near
zero.
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_table
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import CATEGORIES, build_demand_cached
from repro.core.resources import resource_breakdown
from repro.core.server import build_server_cached
from repro.workloads.registry import get_workload

LADDER = [
    ArchitectureConfig.baseline(),
    ArchitectureConfig.baseline_acc(),
    ArchitectureConfig.baseline_acc_p2p(),
    ArchitectureConfig.trainbox(),
]


def build_figure():
    out = {}
    for label, workload_name in (("image", "Resnet-50"), ("audio", "Transformer-SR")):
        workload = get_workload(workload_name)
        per_arch = {}
        for arch in LADDER:
            server = build_server_cached(arch, TARGET_SCALE)
            demand = build_demand_cached(server, workload)
            per_arch[arch.name] = resource_breakdown(demand)
        base = per_arch["baseline"]
        normalized = {}
        for arch_name, tables in per_arch.items():
            normalized[arch_name] = {
                resource: sum(tables[resource].values())
                / max(sum(base[resource].values()), 1e-12)
                for resource in ("cpu", "memory", "pcie")
            }
        out[label] = normalized
    return out


def test_fig22_host_utilization(benchmark, capsys):
    data = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    blocks = []
    for label, normalized in data.items():
        rows = [
            [arch_name]
            + [f"{values[r]:.2f}" for r in ("cpu", "memory", "pcie")]
            for arch_name, values in normalized.items()
        ]
        blocks.append(
            f"({label})\n"
            + format_table(["architecture", "CPU", "memory BW", "PCIe BW"], rows)
        )
    emit(
        capsys,
        "Figure 22 — host resource utilization normalized to the baseline",
        "\n\n".join(blocks),
    )
    for label, normalized in data.items():
        acc = normalized["baseline+acc"]
        p2p = normalized["baseline+acc+p2p"]
        tb = normalized["trainbox"]
        assert acc["cpu"] < 0.1                    # compute offloaded
        assert 1.5 < acc["pcie"] <= 2.01           # datapath doubled
        assert p2p["memory"] < 0.01                # host DRAM freed
        assert abs(p2p["pcie"] - acc["pcie"]) < 0.02
        assert tb["cpu"] < 0.05 and tb["memory"] < 0.01 and tb["pcie"] < 0.01
