"""Simulation service under concurrent load: dedup, identity, latency.

The service's promise (ISSUE 8) is that putting a broker between callers
and the engines changes *when* results are computed — never *what*.
This benchmark replays the mixed trace from 16 concurrent clients with
every request duplicated (50% duplicates) and gates all three halves of
the contract:

* **bit-identity** — every response payload equals a direct
  ``execute_request`` evaluation of the same request object, canonical
  JSON, byte for byte (checked inside the harness for all responses);
* **dedup accounting** — the cold server serves every unique request
  with exactly one engine pass and every duplicate from single-flight
  coalescing or the memo (``computed + batched == unique``,
  ``coalesced + memo == duplicates``);
* **latency** — p50/p99 (stored as 1/latency rates so the standard
  regression tolerance applies unchanged) and request throughput must
  stay within tolerance of the committed baseline in
  ``benchmarks/baselines/service_latency.json``.

A second gate targets the cross-request batch scheduler (ISSUE 9): the
all-distinct 252-request analytical trace, pipelined from 16 clients,
must be served at least 2x faster at the p99 with batching on than off
(bit-identity asserted for every response of both phases before any
timing), the stitch counters must show > 4 points per kernel dispatch,
and the batched p99/throughput rates gate against
``benchmarks/baselines/service_batch.json``.

Refresh the baselines on a quiet machine with::

    PYTHONPATH=src python -m repro bench-service --update
    PYTHONPATH=src python -m repro bench-service --distinct --update
"""

from benchmarks._harness import emit
from repro import perf
from repro.analysis.tables import format_table
from repro.service import ServiceConfig
from repro.service.bench import (
    BASELINE_PATH,
    BATCH_BASELINE_PATH,
    run_batch_comparison,
    run_load_test,
)

#: The acceptance load: N>=16 clients, dup_factor=2 -> 50% duplicates.
N_CLIENTS = 16
DUP_FACTOR = 2

#: Floor on the duplicate traffic served without an engine run.  On a
#: cold server the accounting invariant already forces coalesced + memo
#: == duplicates; this guards the *reporting* of the split.
MIN_DEDUPED_FRACTION = 1.0


def test_service_load_vs_baseline(benchmark, capsys):
    report = benchmark.pedantic(
        lambda: run_load_test(
            n_clients=N_CLIENTS,
            dup_factor=DUP_FACTOR,
            config=ServiceConfig(max_workers=4, max_pending=4096),
        ),
        rounds=1,
        iterations=1,
    )

    # The harness has already verified bit-identity for every response
    # and raised on any divergence; re-assert the headline accounting.
    assert report.duplicates * 2 == report.total  # 50% duplicates
    assert report.computed + report.batched == report.unique
    deduped = report.coalesced + report.memo_hits
    assert deduped >= MIN_DEDUPED_FRACTION * report.duplicates
    assert report.errors == 0 and report.rejected == 0

    measurements = report.measurements()
    baseline = perf.load_baseline(BASELINE_PATH)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    emit(
        capsys,
        f"Service load test ({N_CLIENTS} clients, "
        f"{report.duplicates}/{report.total} duplicates)",
        format_table(
            ["measurement", "seconds*1e3", "rate", "baseline"], rows
        )
        + "\n\n"
        + report.summary(),
    )
    assert baseline, f"missing baseline {BASELINE_PATH}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)


#: The distinct-point acceptance gate: batched p99 must beat the
#: unbatched path by at least this factor on the 16-client trace.
SPEEDUP_FLOOR = 2.0
MIN_POINTS_PER_DISPATCH = 4.0


def test_service_batch_vs_baseline(benchmark, capsys):
    report = benchmark.pedantic(
        lambda: run_batch_comparison(
            n_clients=N_CLIENTS,
            speedup_floor=SPEEDUP_FLOOR,
            min_points_per_dispatch=MIN_POINTS_PER_DISPATCH,
        ),
        rounds=1,
        iterations=1,
    )

    # The harness asserted identity for both phases and enforced the
    # speedup floor; re-assert the headline accounting here.
    assert report.batched.batched == report.batched.unique
    assert report.unbatched.computed == report.unbatched.unique
    assert report.points_per_dispatch > MIN_POINTS_PER_DISPATCH
    assert report.p99_speedup >= SPEEDUP_FLOOR

    measurements = report.measurements()
    baseline = perf.load_baseline(BATCH_BASELINE_PATH)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    emit(
        capsys,
        f"Service cross-request batching ({N_CLIENTS} clients, "
        f"{report.batched.total} distinct requests)",
        format_table(
            ["measurement", "seconds*1e3", "rate", "baseline"], rows
        )
        + "\n\n"
        + report.summary(),
    )
    assert baseline, f"missing baseline {BATCH_BASELINE_PATH}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)
