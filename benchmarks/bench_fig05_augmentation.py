"""Figure 5: data augmentation improves model accuracy.

Paper shape (ImageNet/ResNet-50): training with augmentation ends 29.1
accuracy points above training without.  Our end-to-end miniature (numpy
MLP on the synthetic image dataset, gradients exchanged through the ring
all-reduce) shows the same ordering with a clear final gap.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_series
from repro.training.trainer import TrainConfig, augmentation_experiment


def build_figure():
    return augmentation_experiment(
        config=TrainConfig(epochs=25, lr=0.03, batch_size=32, seed=0)
    )


def test_fig05_augmentation_accuracy(benchmark, capsys):
    curves = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    epochs = list(range(1, len(curves["with_augmentation"]) + 1))
    body = "\n".join(
        [
            format_series("with augmentation   ", epochs, curves["with_augmentation"]),
            format_series("without augmentation", epochs, curves["without_augmentation"]),
        ]
    )
    final_gap = (
        curves["with_augmentation"][-1] - curves["without_augmentation"][-1]
    )
    emit(
        capsys,
        "Figure 5 — top-5 accuracy, with vs without data augmentation",
        body
        + f"\n\nfinal gap: {100 * final_gap:.1f} points "
        "(paper: 29.1 points on ImageNet/ResNet-50)",
    )
    import numpy as np

    tail_aug = np.mean(curves["with_augmentation"][-3:])
    tail_noaug = np.mean(curves["without_augmentation"][-3:])
    assert tail_aug > tail_noaug
