"""Sweep-engine throughput: the Figure 21 grid, cold vs warm cache.

The evaluation harness replays the same grids every run; the sweep
engine's promise is that replays are nearly free and never change a
number.  This benchmark guards both halves:

* the warm-cache path serves the full Figure 21 grid at least 3× faster
  than computing it serially from scratch, while returning results that
  are **identical** (every float, bit for bit) to the serial uncached
  run;
* neither path silently rots: both points/s numbers must stay within
  the tolerance (default 30%) of the committed baseline in
  ``benchmarks/baselines/sweep_throughput.json``.

Refresh the baseline on a quiet machine with::

    PYTHONPATH=src python -m repro bench-sweep --update
"""

from pathlib import Path

from benchmarks._harness import emit
from repro import perf
from repro.analysis.tables import format_table

BASELINE_PATH = Path(__file__).parent / "baselines" / "sweep_throughput.json"

#: Acceptance floor for warm-cache replay vs serial uncached compute.
MIN_WARM_SPEEDUP = 3.0


def test_sweep_throughput_vs_baseline(benchmark, capsys):
    measurements = benchmark.pedantic(
        lambda: perf.sweep_suite(repeats=3, n_jobs=4), rounds=1, iterations=1
    )
    baseline = perf.load_baseline(BASELINE_PATH)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    by_name = {m.name: m for m in measurements}
    speedup = (
        by_name["fig21_warm_cache"].samples_per_s
        / by_name["fig21_serial_uncached"].samples_per_s
    )
    emit(
        capsys,
        "Sweep-engine throughput (Figure 21 grid, best-of-3)",
        format_table(["benchmark", "best ms", "points/s", "baseline"], rows)
        + f"\n\nwarm-cache speedup: {speedup:.1f}x (floor {MIN_WARM_SPEEDUP}x)",
    )
    assert speedup >= MIN_WARM_SPEEDUP
    assert baseline, f"missing baseline {BASELINE_PATH}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)


def test_sweep_cold_batch_vs_scalar(capsys):
    """The vectorized kernel gate: the 576-point uncached grid must be
    bit-identical to the scalar engine (asserted inside the suite before
    any timing) and at least ``perf.MIN_BATCH_SPEEDUP`` times faster,
    with both absolute throughputs held to the committed baseline.

    Refresh the baseline on a quiet machine with::

        PYTHONPATH=src python -m repro bench-sweep --cold --update
    """
    cold_path = Path(__file__).parent / "baselines" / "sweep_cold.json"
    measurements, speedup = perf.sweep_cold_suite(repeats=3)
    baseline = perf.load_baseline(cold_path)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    emit(
        capsys,
        "Cold sweep grid: vectorized kernel vs scalar engine (best-of-3)",
        format_table(["benchmark", "best ms", "points/s", "baseline"], rows)
        + f"\n\nvectorized speedup: {speedup:.2f}x "
        f"(floor {perf.MIN_BATCH_SPEEDUP:.0f}x)",
    )
    assert speedup >= perf.MIN_BATCH_SPEEDUP
    assert baseline, f"missing baseline {cold_path}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)


def test_sweep_cache_and_pool_change_nothing(capsys):
    """The speedup claims are only meaningful if cached == computed."""
    serial, cached = perf.sweep_equivalence(n_jobs=4)
    assert serial.points == cached.points
    assert serial.results == cached.results  # frozen dataclasses: exact
    assert cached.cache_hits == len(cached.points)
    emit(
        capsys,
        "Sweep-engine equivalence",
        f"{len(serial.points)} points: serial/uncached == parallel/"
        "warm-cache, bit for bit",
    )
