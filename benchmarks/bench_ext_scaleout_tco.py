"""Extension: the §III-A scale-up vs scale-out arguments, quantified.

Two claims from the paper's motivation:

1. "a scale-out system with 96 DGX-2 shows only 39.7× improvement over
   one DGX-2 in MLPerf results" — reproduced by the hierarchical-ring
   strong-scaling model (NIC-bound inter-node synchronization);
2. "scale-up can amortize host resources while scale-out requires
   dedicated resources for each node" — reproduced by the TCO model's
   bills of materials.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.analysis.tco import host_amortization_ratio, scaleout_bom, trainbox_bom
from repro.core.sweeps import SweepSpec, run_sweep
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
NODE_COUNTS = (1, 2, 4, 8, 16, 32, 48, 96)


def build_figure():
    spec = SweepSpec(
        workloads=(RESNET,),
        archs=(None,),
        scales=NODE_COUNTS,
        engine="scaleout",
    )
    scaling_rows = []
    for point, result in run_sweep(spec):
        scaling_rows.append(
            [
                point.scale,
                result.n_accelerators,
                result.per_acc_batch,
                f"{result.sync_time * 1e3:.1f} ms",
                f"{result.speedup_over_one_node:.1f}x",
                f"{100 * result.efficiency:.0f}%",
            ]
        )

    tco_rows = []
    for n_acc in (64, 256):
        up = trainbox_bom(n_acc)
        out = scaleout_bom(n_acc)
        tco_rows.append(
            [
                n_acc,
                f"${up.total:,.0f}",
                f"${out.total:,.0f}",
                f"${up.host_overhead_per_accelerator:,.0f}",
                f"${out.host_overhead_per_accelerator:,.0f}",
                f"{host_amortization_ratio(n_acc):.0f}x",
            ]
        )
    return scaling_rows, tco_rows


def test_ext_scaleout_and_tco(benchmark, capsys):
    scaling_rows, tco_rows = benchmark(build_figure)
    scaling = format_table(
        ["DGX-2 nodes", "accels", "batch/acc", "sync", "speedup", "efficiency"],
        scaling_rows,
    )
    tco = format_table(
        [
            "accels",
            "scale-up capex",
            "scale-out capex",
            "host $/acc (up)",
            "host $/acc (out)",
            "host overhead gap",
        ],
        tco_rows,
    )
    emit(
        capsys,
        "Extension — scale-out scaling and TCO (§III-A)",
        f"(a) strong scaling over 100 GbE, ResNet-50\n{scaling}\n\n"
        "paper: 96 DGX-2 give only 39.7x over one DGX-2\n\n"
        f"(b) bills of materials\n{tco}",
    )
    at_96 = next(r for r in scaling_rows if r[0] == 96)
    assert 30 < float(at_96[4].rstrip("x")) < 50
    assert float(tco_rows[-1][5].rstrip("x")) > 20
