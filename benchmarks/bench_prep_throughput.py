"""Data-preparation throughput: the batched engine vs its reference.

The tentpole claim of the prep engine is that the vectorized
``apply_batch`` path — lock-step batched JPEG entropy decode, one
gather per random-crop batch, fused noise — prepares a 256-image
256×256 JPEG batch at least 5× the throughput of the kept per-sample
reference loop (the symbol-at-a-time entropy decoder and one ``run``
per sample), while producing bit-identical outputs.  This benchmark
guards that claim and three more properties:

* end-to-end bit-identity of the two pipeline paths (asserted inside
  :func:`repro.perf.prep_reference_speedup` before anything is timed);
* the multi-process engine's parallel == serial determinism contract;
* prep throughput does not silently rot: every number must stay within
  the tolerance (default 30%, CI 60%) of the committed baseline in
  ``benchmarks/baselines/prep_throughput.json``.

Refresh the baseline on a quiet machine with::

    PYTHONPATH=src python -m repro bench-prep --update
"""

from pathlib import Path

import numpy as np

from benchmarks._harness import emit
from repro import perf
from repro.analysis.tables import format_table

BASELINE_PATH = Path(__file__).parent / "baselines" / "prep_throughput.json"

#: Acceptance floor for the batched prep path on a 256-image batch.
MIN_PREP_SPEEDUP = 5.0


def test_prep_throughput_vs_baseline(benchmark, capsys):
    measurements = benchmark.pedantic(
        lambda: perf.prep_suite(size=256, batch=32, repeats=5),
        rounds=1,
        iterations=1,
    )
    baseline = perf.load_baseline(BASELINE_PATH)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    emit(
        capsys,
        "Prep throughput (image and audio pipelines, best-of-5)",
        format_table(["benchmark", "best ms", "samples/s", "baseline"], rows),
    )
    assert baseline, f"missing baseline {BASELINE_PATH}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)


def test_batched_prep_speedup_over_reference(benchmark, capsys):
    speedup = benchmark.pedantic(
        lambda: perf.prep_reference_speedup(size=256, batch=256, repeats=4),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "Batched prep vs per-sample reference",
        f"256-image 256×256 JPEG batch speedup: {speedup:.2f}x "
        f"(floor {MIN_PREP_SPEEDUP}x, bit-identical outputs)",
    )
    assert speedup >= MIN_PREP_SPEEDUP


def test_engine_parallel_matches_serial():
    """The throughput story may never cost a bit: worker-pool output is
    the serial output, exactly."""
    serial, parallel = perf.prep_equivalence(
        size=64, num_samples=12, batch_size=4, workers=2
    )
    assert len(serial) == len(parallel) == 3
    for a, b in zip(serial, parallel):
        assert np.array_equal(a, b)
