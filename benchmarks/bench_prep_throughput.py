"""Data-preparation throughput: the batched engine vs its reference.

The tentpole claim of the prep engine is that the vectorized
``apply_batch`` path — lock-step batched JPEG entropy decode, one
gather per random-crop batch, fused noise — prepares a 256-image
256×256 JPEG batch at least 5× the throughput of the kept per-sample
reference loop (the symbol-at-a-time entropy decoder and one ``run``
per sample), while producing bit-identical outputs.  This benchmark
guards that claim and three more properties:

* end-to-end bit-identity of the two pipeline paths (asserted inside
  :func:`repro.perf.prep_reference_speedup` before anything is timed);
* the compiled-plan path (:mod:`repro.dataprep.plan`) beats the per-op
  vectorized path bit-identically (asserted inside
  :func:`repro.perf.prep_plan_speedup` before timing) — ~1.25× on the
  decode-bound JPEG pipeline and ~1.5× on the decode-free audio
  pipeline (floors below hold margin for host noise; the Amdahl
  analysis is in ``docs/performance.md``) — and retains no memory
  across warm ``execute()`` calls
  (:func:`repro.perf.assert_zero_alloc`);
* the multi-process engine's parallel == serial determinism contract;
* prep throughput does not silently rot: every number must stay within
  the tolerance (default 30%, CI 60%) of the committed baseline in
  ``benchmarks/baselines/prep_throughput.json``.

Refresh the baseline on a quiet machine with::

    PYTHONPATH=src python -m repro bench-prep --update
"""

from pathlib import Path

import numpy as np

from benchmarks._harness import emit
from repro import perf
from repro.analysis.tables import format_table

BASELINE_PATH = Path(__file__).parent / "baselines" / "prep_throughput.json"

#: Acceptance floor for the batched prep path on a 256-image batch.
MIN_PREP_SPEEDUP = 5.0

#: Acceptance floor for the compiled-plan path over the per-op
#: vectorized path on the same 256-image JPEG batch.  Shared entropy
#: decode bounds the ratio (Amdahl): measured ~1.25x warm, floor holds
#: margin for single-core host noise.
MIN_PLAN_SPEEDUP = 1.05

#: Not-slower guard for the compiled-plan audio path in a *churned*
#: process (this pytest run shares its heap with the image benchmarks):
#: once glibc's dynamic mmap threshold makes the per-op path's large
#: temporaries cheap heap reuse, the two paths converge (~1.0x), so the
#: fresh-process ~1.6x floor lives in ``repro bench-prep --plan``
#: (which measures audio before any churn) and this test only guards
#: against the plan path regressing below the per-op path.
MIN_AUDIO_PLAN_RATIO = 0.85


def test_prep_throughput_vs_baseline(benchmark, capsys):
    measurements = benchmark.pedantic(
        lambda: perf.prep_suite(size=256, batch=32, repeats=5),
        rounds=1,
        iterations=1,
    )
    baseline = perf.load_baseline(BASELINE_PATH)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    emit(
        capsys,
        "Prep throughput (image and audio pipelines, best-of-5)",
        format_table(["benchmark", "best ms", "samples/s", "baseline"], rows),
    )
    assert baseline, f"missing baseline {BASELINE_PATH}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)


def test_batched_prep_speedup_over_reference(benchmark, capsys):
    speedup = benchmark.pedantic(
        lambda: perf.prep_reference_speedup(size=256, batch=256, repeats=4),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "Batched prep vs per-sample reference",
        f"256-image 256×256 JPEG batch speedup: {speedup:.2f}x "
        f"(floor {MIN_PREP_SPEEDUP}x, bit-identical outputs)",
    )
    assert speedup >= MIN_PREP_SPEEDUP


def test_plan_speedup_over_per_op_path(benchmark, capsys):
    speedup = benchmark.pedantic(
        lambda: perf.prep_plan_speedup(size=256, batch=256, repeats=8),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "Compiled plan vs per-op vectorized path (JPEG, decode-bound)",
        f"256-image 256×256 JPEG batch speedup: {speedup:.2f}x "
        f"(floor {MIN_PLAN_SPEEDUP}x, bit-identical outputs)",
    )
    assert speedup >= MIN_PLAN_SPEEDUP


def test_audio_plan_speedup_over_per_op_path(benchmark, capsys):
    speedup = benchmark.pedantic(
        lambda: perf.audio_plan_speedup(repeats=15),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "Compiled plan vs per-op vectorized path (audio, churned heap)",
        f"32-utterance PCM batch speedup: {speedup:.2f}x "
        f"(not-slower floor {MIN_AUDIO_PLAN_RATIO}x, bit-identical)",
    )
    assert speedup >= MIN_AUDIO_PLAN_RATIO


def test_plan_steady_state_is_zero_alloc():
    """A warm plan's ``execute`` retains nothing across calls — the
    pooled arena is the whole working set."""
    from repro.dataprep.ops_image import image_pipeline
    from repro.dataprep.pipeline import spawn_rngs
    from repro.dataprep.plan import compile_plan, geometry_for_batch

    pipe = image_pipeline(out_height=48, out_width=48)
    blobs = perf._bench_jpeg_blobs(64, 16)
    plan = compile_plan(pipe, geometry_for_batch(pipe, blobs))

    def step():
        plan.execute(blobs, spawn_rngs(np.random.default_rng(0), 16))

    perf.assert_zero_alloc(step)


def test_engine_parallel_matches_serial():
    """The throughput story may never cost a bit: worker-pool output is
    the serial output, exactly."""
    serial, parallel = perf.prep_equivalence(
        size=64, num_samples=12, batch_size=4, workers=2
    )
    assert len(serial) == len(parallel) == 3
    for a, b in zip(serial, parallel):
        assert np.array_equal(a, b)
