"""Methodology validation (§VI-A): the analytical model vs the DES.

The paper argues its simulator is accurate because training is
throughput-oriented and pipelined, so latency variation barely affects
throughput.  This benchmark quantifies both halves on our engines: the
batch-level DES agrees with the closed-form solver within 2% across the
whole Figure 19 ladder, and stays within a few percent even under 30%
lognormal service-time jitter.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.des import simulate_des
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
LADDER = ArchitectureConfig.figure19_ladder()


def build_figure():
    rows = []
    for arch in LADDER:
        for n in (8, 64, 256):
            scenario = TrainingScenario(RESNET, arch, n)
            analytical = simulate(scenario)
            det = simulate_des(scenario, iterations=60)
            jit = simulate_des(scenario, iterations=60, jitter=0.3, seed=11)
            rows.append(
                [
                    arch.name,
                    n,
                    f"{analytical.throughput:,.0f}",
                    f"{100 * det.relative_error(analytical.throughput):.2f}%",
                    f"{100 * jit.relative_error(analytical.throughput):.2f}%",
                ]
            )
    return rows


def test_validation_des_agreement(benchmark, capsys):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    table = format_table(
        ["architecture", "accels", "analytical", "DES error", "DES+30% jitter"],
        rows,
    )
    emit(
        capsys,
        "Methodology validation — analytical vs discrete-event simulation",
        table
        + "\n\npaper §VI-A: latency variation has small throughput impact "
        "thanks to pipelining / next-batch prefetching",
    )
    for row in rows:
        assert float(row[3].rstrip("%")) < 2.0
        assert float(row[4].rstrip("%")) < 8.0
