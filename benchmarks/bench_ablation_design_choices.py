"""Ablations of the TrainBox design choices (DESIGN.md §4).

Each block isolates one decision the paper bakes into the train-box
recipe and shows what the alternative costs:

* FPGAs per box (2 in §V-D) — audio needs the pool with 2, fails with 1;
* the dedicated Ethernet prep network — replacing 100 GbE with slower
  links starves the pool path;
* PCIe generation inside the box — Gen4 lifts the residual FPGA-egress
  limit on the highest-rate image model;
* SSDs per box — 2 is already sufficient for every Table I workload.
"""

import dataclasses

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.pcie.link import PcieGen
from repro.workloads.registry import get_workload
from repro import units

HW = HardwareConfig()
TRAINBOX = ArchitectureConfig.trainbox()


def _run(workload, arch=TRAINBOX, hw=HW, pool=None):
    result = simulate(
        TrainingScenario(workload, arch, TARGET_SCALE, hw=hw, pool_size=pool)
    )
    target = TARGET_SCALE * workload.sample_rate
    return result, 100 * result.throughput / target


def build_figure():
    rows = []

    tf_sr = get_workload("Transformer-SR")
    no_pool = ArchitectureConfig.trainbox(prep_pool=False)
    for k in (1, 2, 4):
        # Pool disabled so the knob's own effect is visible (with the
        # pool on, borrowed FPGAs backfill any in-box shortfall).
        hw = dataclasses.replace(HW, fpgas_per_train_box=k)
        result, pct = _run(tf_sr, arch=no_pool, hw=hw)
        rows.append(["fpgas/box", f"{k}", tf_sr.name, f"{pct:.1f}%", result.bottleneck])

    for gbps in (10, 25, 100):
        hw = dataclasses.replace(HW, ethernet_bandwidth=gbps / 8 * units.GB)
        result, pct = _run(tf_sr, hw=hw)
        rows.append(
            ["prep network", f"{gbps} GbE", tf_sr.name, f"{pct:.1f}%", result.bottleneck]
        )

    rnn_s = get_workload("RNN-S")
    for gen in (PcieGen.GEN3, PcieGen.GEN4):
        arch = dataclasses.replace(TRAINBOX, pcie_gen=gen, name=f"trainbox-{gen.name.lower()}")
        result, pct = _run(rnn_s, arch=arch)
        rows.append(["box PCIe", gen.name, rnn_s.name, f"{pct:.1f}%", result.bottleneck])

    resnet = get_workload("Resnet-50")
    for k in (1, 2):
        hw = dataclasses.replace(HW, ssds_per_train_box=k)
        result, pct = _run(resnet, hw=hw)
        rows.append(["ssds/box", f"{k}", resnet.name, f"{pct:.1f}%", result.bottleneck])
    return rows


def test_ablation_design_choices(benchmark, capsys):
    rows = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    table = format_table(["knob", "value", "workload", "% of target", "bottleneck"], rows)
    emit(capsys, "Ablation — TrainBox design choices at 256 accelerators", table)

    by_knob = {}
    for knob, value, _w, pct, _b in rows:
        by_knob.setdefault(knob, []).append(float(pct.rstrip("%")))
    # More FPGAs per box never hurt; 1 per box is insufficient for audio.
    fpgas = by_knob["fpgas/box"]
    assert fpgas == sorted(fpgas)
    assert fpgas[0] < 40
    # A slower prep network throttles the pool-assisted audio pipeline.
    eth = by_knob["prep network"]
    assert eth[0] <= eth[-1]
    # Gen4 boxes lift RNN-S's residual egress limit to (near) target.
    gen = by_knob["box PCIe"]
    assert gen[1] > gen[0]
    assert gen[1] > 95
