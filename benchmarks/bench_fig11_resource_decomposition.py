"""Figure 11: decomposition of baseline host-resource consumption.

Paper shape (image): CPU dominated by formatting + augmentation; memory
bandwidth split ≈59% formatting/augmentation, ≈37% data load; PCIe
dominated by the data copies (SSD read + data load).  Audio shifts more
weight into formatting (STFT).
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_table
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import CATEGORIES, build_demand
from repro.core.resources import resource_breakdown, shares
from repro.core.server import build_server
from repro.workloads.registry import get_workload

ARCH = ArchitectureConfig.baseline()


def build_figure():
    server = build_server(ARCH, TARGET_SCALE)
    out = {}
    for label, workload_name in (("image", "Resnet-50"), ("audio", "Transformer-SR")):
        demand = build_demand(server, get_workload(workload_name))
        tables = resource_breakdown(demand)
        out[label] = {
            resource: shares(table) for resource, table in tables.items()
        }
    return out


def test_fig11_resource_decomposition(benchmark, capsys):
    data = benchmark(build_figure)
    blocks = []
    for label, tables in data.items():
        rows = []
        for resource, table in tables.items():
            rows.append(
                [resource] + [f"{100 * table.get(c, 0.0):.1f}%" for c in CATEGORIES]
            )
        blocks.append(
            f"({label})\n"
            + format_table(["resource"] + list(CATEGORIES), rows)
        )
    emit(
        capsys,
        "Figure 11 — baseline host resource consumption by stage",
        "\n\n".join(blocks),
    )
    image = data["image"]
    assert image["cpu"]["formatting"] + image["cpu"]["augmentation"] > 0.9
    assert abs(image["memory"]["data_load"] - 0.367) < 0.07
    audio = data["audio"]
    assert audio["memory"]["formatting"] + audio["memory"]["augmentation"] > 0.6
    # PCIe at the RC carries only the two copies in the baseline.
    assert image["pcie"]["ssd_read"] + image["pcie"]["data_load"] > 0.99
