"""Codec throughput: the data-prep fast paths vs their reference loops.

The paper's premise is that data prep — JPEG decode above all (§V-B) —
is the operation that must be balanced against accelerator consumption.
This benchmark pins down what the package's own codecs deliver and
guards two properties:

* the vectorized JPEG entropy fast path decodes a 256×256 photo-like
  image at least 5× faster than the symbol-at-a-time reference, while
  producing byte-identical bitstreams on encode and identical pixels on
  decode;
* throughput does not silently rot: every fast-path number must stay
  within the tolerance (default 30%) of the committed baseline in
  ``benchmarks/baselines/codec_throughput.json``.

Refresh the baseline on a quiet machine with::

    PYTHONPATH=src python -m repro bench-codec --update
"""

from pathlib import Path

import numpy as np
import pytest

from benchmarks._harness import emit
from repro import perf
from repro.analysis.tables import format_table
from repro.dataprep.jpeg.codec import JpegCodec
from repro.dataprep.png import codec as png

BASELINE_PATH = Path(__file__).parent / "baselines" / "codec_throughput.json"

#: Acceptance floor for the vectorized JPEG decode path.
MIN_DECODE_SPEEDUP = 5.0


def test_codec_throughput_vs_baseline(benchmark, capsys):
    measurements = benchmark.pedantic(
        lambda: perf.codec_suite(size=256, repeats=10), rounds=1, iterations=1
    )
    baseline = perf.load_baseline(BASELINE_PATH)
    rows = [
        [
            m.name,
            f"{m.best_seconds * 1000:.2f}",
            f"{m.samples_per_s:,.1f}",
            f"{baseline.get(m.name, float('nan')):,.1f}",
        ]
        for m in measurements
    ]
    emit(
        capsys,
        "Codec throughput (256×256 photo-like image, best-of-10)",
        format_table(["benchmark", "best ms", "samples/s", "baseline"], rows),
    )
    assert baseline, f"missing baseline {BASELINE_PATH}"
    failures = perf.regressions(measurements, baseline)
    assert not failures, "; ".join(failures)


def test_jpeg_decode_speedup_over_reference(benchmark, capsys):
    speedup = benchmark.pedantic(
        lambda: perf.reference_decode_speedup(size=256, repeats=10),
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "JPEG decode fast path vs reference",
        f"256×256 decode speedup: {speedup:.2f}x (floor {MIN_DECODE_SPEEDUP}x)",
    )
    assert speedup >= MIN_DECODE_SPEEDUP


@pytest.mark.parametrize("subsample", [True, False])
def test_jpeg_fast_path_bitstream_identity(subsample):
    """The throughput claims are only meaningful if fast == reference."""
    img = perf.bench_image(64, 64)
    fast = JpegCodec(quality=75, subsample=subsample, fast=True)
    ref = JpegCodec(quality=75, subsample=subsample, fast=False)
    blob = fast.encode(img)
    assert blob == ref.encode(img)
    assert np.array_equal(
        JpegCodec.decode(blob, fast=True), JpegCodec.decode(blob, fast=False)
    )


def test_png_fast_path_roundtrip():
    img = perf.bench_image(64, 64)
    assert np.array_equal(png.decode(png.encode(img)), img)
