"""Figure 19: impact of TrainBox's stacked optimizations at 256
accelerators.

Paper shape: Acc ≈3.32× (images), P2P alone flat (RC-bound), Gen4 helps
but less than clustering, full TrainBox 44.4× on average with TF-AA the
largest winner at 84.3×.
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_table
from repro.core.config import ArchitectureConfig
from repro.api import sweep as run_sweep
from repro.core.sweeps import SweepSpec
from repro.workloads.registry import TABLE_I

LADDER = ArchitectureConfig.figure19_ladder()


def build_figure():
    spec = SweepSpec(
        workloads=tuple(TABLE_I.values()),
        archs=tuple(LADDER),
        scales=(TARGET_SCALE,),
    )
    outcome = run_sweep(spec)
    # The whole grid is analytical — the vectorized kernel must take it.
    assert outcome.batch_points == len(outcome.points)
    keyed = outcome.by_key()
    table = {}
    for name in TABLE_I:
        base = keyed[(name, LADDER[0].name, TARGET_SCALE)]
        table[name] = {
            arch.name: keyed[(name, arch.name, TARGET_SCALE)].throughput
            / base.throughput
            for arch in LADDER
        }
    return table


def test_fig19_optimization_impact(benchmark, capsys):
    table = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    headers = ["model"] + [a.name for a in LADDER]
    rows = [
        [name] + [f"{row[a.name]:.1f}x" for a in LADDER]
        for name, row in table.items()
    ]
    speedups = [row["trainbox"] for row in table.values()]
    mean = sum(speedups) / len(speedups)
    rows.append(
        ["average"]
        + [
            f"{sum(r[a.name] for r in table.values()) / len(table):.1f}x"
            for a in LADDER
        ]
    )
    emit(
        capsys,
        "Figure 19 — normalized throughput at 256 accelerators",
        format_table(headers, rows)
        + f"\n\nTrainBox mean speedup: {mean:.1f}x (paper: 44.4x; "
        "largest TF-AA, paper: 84.3x)",
    )
    assert 30 < mean < 60
    assert max(table, key=lambda m: table[m]["trainbox"]) == "Transformer-AA"
    for row in table.values():
        assert abs(row["baseline+acc+p2p"] - row["baseline+acc"]) < 1e-6
        assert row["trainbox"] > row["baseline+acc+p2p+gen4"]
