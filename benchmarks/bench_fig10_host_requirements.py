"""Figure 10: host resources the baseline would need, normalized to DGX-2.

Paper shape at 256 accelerators: up to 100.7× the CPU cores (avg ~50×),
up to 17.9× the memory bandwidth, up to 18.0× the PCIe bandwidth at the
root complex.
"""

import math

import numpy as np

from benchmarks._harness import SCALE_SWEEP, emit
from repro.analysis.tables import format_series, format_table
from repro.core.analytical_batch import flow_incidence, routing_table
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import build_demand_cached
from repro.core.resources import host_requirements
from repro.core.server import build_server_cached
from repro.workloads.registry import TABLE_I

ARCH = ArchitectureConfig.baseline()


def _rc_bytes_from_incidence(server, workload) -> float:
    """Figure 10c's RC-port traffic, rederived from the vectorized sweep
    kernel's link × flow incidence: sum the volumes of every hop whose
    link hangs directly off the root complex."""
    table = routing_table(server)
    incidence = flow_incidence(server, workload, table)
    root = table.index[server.topology.root.node_id]
    parent = np.asarray(table.parent)
    rc_hop = parent[incidence.hop_link // 2] == root
    return float(incidence.volumes[incidence.hop_flow[rc_hop]].sum())


def build_figure():
    curves = {}
    server = build_server_cached(ARCH, 256)
    for name, workload in TABLE_I.items():
        demand = build_demand_cached(server, workload)
        per_scale = []
        for n in SCALE_SWEEP:
            req = host_requirements(demand, n * workload.sample_rate)
            per_scale.append(
                (
                    req.normalized_cores,
                    req.normalized_memory_bandwidth,
                    req.normalized_pcie_bandwidth,
                )
            )
        curves[name] = per_scale
    return curves


def test_fig10_host_requirements(benchmark, capsys):
    curves = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    blocks = []
    for idx, label in ((0, "(a) CPU cores"), (1, "(b) memory BW"), (2, "(c) PCIe BW at RC")):
        lines = [
            format_series(f"{name:15s}", SCALE_SWEEP, [p[idx] for p in series])
            for name, series in curves.items()
        ]
        blocks.append(label + "\n" + "\n".join(lines))
    at_256 = {name: series[-1] for name, series in curves.items()}
    maxima = [max(v[i] for v in at_256.values()) for i in range(3)]
    avg_cores = sum(v[0] for v in at_256.values()) / len(at_256)
    emit(
        capsys,
        "Figure 10 — required host resources normalized to DGX-2",
        "\n\n".join(blocks)
        + f"\n\nmax at 256 accels: cores {maxima[0]:.1f}x (paper 100.7x, avg 50x; "
        f"ours avg {avg_cores:.1f}x), memory {maxima[1]:.1f}x (paper 17.9x), "
        f"PCIe {maxima[2]:.1f}x (paper 18.0x)",
    )
    assert 80 < maxima[0] < 120
    assert 10 < maxima[1] < 30
    assert 10 < maxima[2] < 30


def test_fig10_requirements_grow_linearly(benchmark, capsys):
    """Required resources are linear in scale (the figure's straight
    lines on its linear axes)."""
    server = build_server_cached(ARCH, 256)
    workload = TABLE_I["Resnet-50"]
    demand = build_demand_cached(server, workload)

    def one():
        return host_requirements(demand, 256 * workload.sample_rate)

    req = benchmark(one)
    half = host_requirements(demand, 128 * workload.sample_rate)
    assert req.normalized_cores == 2 * half.normalized_cores


def test_fig10_rc_traffic_matches_batch_incidence():
    """The flow-walking derivation (``rc_bytes_per_sample``) and the
    batch kernel's incidence matrix agree on RC traffic for every
    workload — the two code paths share no pricing code."""
    server = build_server_cached(ARCH, 256)
    for name, workload in TABLE_I.items():
        demand = build_demand_cached(server, workload)
        walked = demand.rc_bytes_per_sample()
        incident = _rc_bytes_from_incidence(server, workload)
        assert math.isclose(walked, incident, rel_tol=1e-9), (
            name, walked, incident
        )
