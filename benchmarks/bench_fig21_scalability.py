"""Figure 21: scalability of every acceleration strategy
(Inception-v4 and Transformer-SR).

Paper shape: the CPU baseline saturates at 18.3 / 4.4 accelerators;
GPU-based prep starts below the baseline and crosses it only at scale;
FPGA-based prep wins immediately but saturates on the RC datapath;
TrainBox scales to the target, with the prep-pool needed for TF-SR
(≈54% extra FPGA resources) but not Inception-v4.
"""

from benchmarks._harness import SCALE_SWEEP, emit
from repro.analysis.tables import format_series
from repro.api import sweep as run_sweep
from repro.core.sweeps import figure21_spec

#: Figure labels for the spec's architectures, in spec order.
LABELS = (
    "Baseline (CPU)",
    "Baseline+Acc (GPU)",
    "Baseline+Acc (FPGA)",
    "TrainBox w/o prep-pool",
    "TrainBox",
)


def build_figure():
    spec = figure21_spec()
    assert spec.scales == SCALE_SWEEP
    outcome = run_sweep(spec)
    # The whole grid is analytical — the vectorized kernel must take it.
    assert outcome.batch_points == len(outcome.points)
    out = {}
    for workload in spec.workloads:
        one = outcome.curve(workload.name, spec.archs[0].name)[0].throughput
        out[workload.name] = {
            label: [
                r.throughput / one
                for r in outcome.curve(workload.name, arch.name)
            ]
            for label, arch in zip(LABELS, spec.archs)
        }
    return out


def test_fig21_scalability(benchmark, capsys):
    data = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    blocks = []
    for workload_name, curves in data.items():
        lines = [
            format_series(f"{label:23s}", SCALE_SWEEP, series)
            for label, series in curves.items()
        ]
        blocks.append(f"({workload_name})\n" + "\n".join(lines))
    emit(
        capsys,
        "Figure 21 — normalized throughput vs #accelerators per strategy",
        "\n\n".join(blocks),
    )
    tf = data["Transformer-SR"]
    # CPU baseline flat at ~4.4.
    assert tf["Baseline (CPU)"][-1] < 5.0
    # FPGA prep crosses the baseline by 8 accelerators (2 FPGAs); the
    # GPU variant is still below it there and only wins at ~32+.
    assert tf["Baseline+Acc (FPGA)"][3] > tf["Baseline (CPU)"][3]
    assert tf["Baseline+Acc (GPU)"][3] < tf["Baseline (CPU)"][3]
    assert tf["Baseline+Acc (GPU)"][-1] > tf["Baseline (CPU)"][-1]
    # Prep-pool closes the audio gap; Inception needs no pool.
    assert tf["TrainBox"][-1] > 1.2 * tf["TrainBox w/o prep-pool"][-1]
    inception = data["Inception-v4"]
    assert inception["TrainBox"][-1] == inception["TrainBox w/o prep-pool"][-1]
    assert inception["TrainBox"][-1] > 200
