"""Figure 21: scalability of every acceleration strategy
(Inception-v4 and Transformer-SR).

Paper shape: the CPU baseline saturates at 18.3 / 4.4 accelerators;
GPU-based prep starts below the baseline and crosses it only at scale;
FPGA-based prep wins immediately but saturates on the RC datapath;
TrainBox scales to the target, with the prep-pool needed for TF-SR
(≈54% extra FPGA resources) but not Inception-v4.
"""

from benchmarks._harness import SCALE_SWEEP, emit
from repro.analysis.tables import format_series
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, PrepDevice
from repro.core.server import build_server_cached
from repro.workloads.registry import get_workload

CONFIGS = [
    ("Baseline (CPU)", ArchitectureConfig.baseline()),
    ("Baseline+Acc (GPU)", ArchitectureConfig.baseline_acc(PrepDevice.GPU)),
    ("Baseline+Acc (FPGA)", ArchitectureConfig.baseline_acc()),
    ("TrainBox w/o prep-pool", ArchitectureConfig.trainbox(prep_pool=False)),
    ("TrainBox", ArchitectureConfig.trainbox()),
]


def build_figure():
    # Each (arch, scale) server is shared across the two workloads.
    out = {}
    for workload_name in ("Inception-v4", "Transformer-SR"):
        workload = get_workload(workload_name)
        baseline = ArchitectureConfig.baseline()
        one = simulate(
            TrainingScenario(workload, baseline, 1),
            server=build_server_cached(baseline, 1),
        ).throughput
        curves = {}
        for label, arch in CONFIGS:
            curves[label] = [
                simulate(
                    TrainingScenario(workload, arch, n),
                    server=build_server_cached(arch, n),
                ).throughput
                / one
                for n in SCALE_SWEEP
            ]
        out[workload_name] = curves
    return out


def test_fig21_scalability(benchmark, capsys):
    data = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    blocks = []
    for workload_name, curves in data.items():
        lines = [
            format_series(f"{label:23s}", SCALE_SWEEP, series)
            for label, series in curves.items()
        ]
        blocks.append(f"({workload_name})\n" + "\n".join(lines))
    emit(
        capsys,
        "Figure 21 — normalized throughput vs #accelerators per strategy",
        "\n\n".join(blocks),
    )
    tf = data["Transformer-SR"]
    # CPU baseline flat at ~4.4.
    assert tf["Baseline (CPU)"][-1] < 5.0
    # FPGA prep crosses the baseline by 8 accelerators (2 FPGAs); the
    # GPU variant is still below it there and only wins at ~32+.
    assert tf["Baseline+Acc (FPGA)"][3] > tf["Baseline (CPU)"][3]
    assert tf["Baseline+Acc (GPU)"][3] < tf["Baseline (CPU)"][3]
    assert tf["Baseline+Acc (GPU)"][-1] > tf["Baseline (CPU)"][-1]
    # Prep-pool closes the audio gap; Inception needs no pool.
    assert tf["TrainBox"][-1] > 1.2 * tf["TrainBox w/o prep-pool"][-1]
    inception = data["Inception-v4"]
    assert inception["TrainBox"][-1] == inception["TrainBox w/o prep-pool"][-1]
    assert inception["TrainBox"][-1] > 200
