"""CI gate: the observability layer must be free when disabled.

Two checks, one exit code:

1. **Overhead** — the serial uncached Figure 21 sweep (the same
   measurement committed in ``benchmarks/baselines/sweep_throughput.json``)
   is re-run with tracing and metrics disabled; throughput more than
   ``REPRO_TRACE_OVERHEAD_TOL`` (default 2%) below the committed
   baseline fails.  Shared CI runners set a looser tolerance the same
   way the bench-* gates do.
2. **Smoke** — one traced + metered sweep over a fig21 sub-grid must
   produce a schema-valid metrics manifest and a well-formed Chrome
   ``trace_event`` document whose iteration spans reconcile with the
   reported iteration time.

Run from the repo root: ``PYTHONPATH=src python benchmarks/check_tracing_overhead.py``
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro import api, obs, perf
from repro.core.config import ArchitectureConfig
from repro.core.sweeps import SweepSpec, figure21_spec, run_sweep
from repro.workloads.registry import get_workload

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "sweep_throughput.json"
BENCH_NAME = "fig21_serial_uncached"
DEFAULT_TOL = 0.02


def overhead_tolerance() -> float:
    raw = os.environ.get("REPRO_TRACE_OVERHEAD_TOL")
    return float(raw) if raw is not None else DEFAULT_TOL


def check_disabled_overhead() -> list:
    baseline = perf.load_baseline(BASELINE_PATH)
    if BENCH_NAME not in baseline:
        return [f"no {BENCH_NAME!r} entry in {BASELINE_PATH}"]
    assert obs.current_tracer() is None and obs.current_metrics() is None
    measurements = [
        m for m in perf.sweep_suite(repeats=3) if m.name == BENCH_NAME
    ]
    tol = overhead_tolerance()
    failures = perf.regressions(measurements, baseline, tol=tol)
    for m in measurements:
        print(
            f"{m.name}: {m.samples_per_s:,.1f} points/s "
            f"(baseline {baseline[BENCH_NAME]:,.1f}, "
            f"tolerance {100 * tol:.0f}%)"
        )
    return failures


def check_traced_smoke() -> list:
    failures = []
    spec = SweepSpec(
        workloads=(get_workload("Inception-v4"),),
        archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
        scales=(1, 4, 16),
    )
    tracer = obs.Tracer()
    with obs.session(tracer=tracer):
        outcome = run_sweep(spec, metrics=True)

    try:
        obs.validate_manifest(outcome.manifest)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
        failures.append(f"sweep manifest invalid: {exc}")
    else:
        points = outcome.manifest["counters"].get("sweep.points")
        if points != len(spec.points()):
            failures.append(
                f"manifest counted {points} points, grid has {len(spec.points())}"
            )

    doc = tracer.to_chrome()
    events = doc.get("traceEvents", [])
    if not any(e.get("ph") == "X" for e in events):
        failures.append("trace has no complete ('X') events")
    if not any(e.get("ph") == "M" for e in events):
        failures.append("trace has no process_name metadata")

    # Reconciliation on a traced single scenario (the fig21 workload).
    tracer = obs.Tracer()
    result = api.simulate(
        "Inception-v4", "trainbox", 16, engine="des", trace=tracer,
        des_iterations=30,
    )
    traced = api.trace_iteration_time(tracer)
    delta = abs(traced - result.iteration_time) / result.iteration_time
    print(f"trace reconciliation: {100 * delta:.4f}% off reported iteration time")
    if delta > 0.01:
        failures.append(
            f"traced iteration time {traced} vs reported "
            f"{result.iteration_time} differ by {100 * delta:.2f}% (>1%)"
        )
    spec_points = len(spec.points())
    print(f"traced smoke sweep: {spec_points} points, "
          f"{len(tracer.spans)} spans on the scenario trace")
    return failures


def main() -> int:
    failures = check_disabled_overhead()
    failures += check_traced_smoke()
    for line in failures:
        print(f"FAIL  {line}", file=sys.stderr)
    if not failures:
        print("tracing overhead gate: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
