"""Table I: workload summary.

Regenerates the registry view of the seven evaluated models and checks
the accelerator model reproduces each measured rate at its reference
batch.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.workloads.registry import TABLE_I
from repro import units


def build_table():
    rows = []
    for workload in TABLE_I.values():
        spec = workload.accelerator_spec()
        rows.append(
            [
                workload.nn_type.value,
                workload.name,
                workload.task,
                workload.batch_size,
                f"{workload.model_bytes / units.MB:.1f}",
                f"{workload.sample_rate:,}",
                f"{spec.throughput(workload.batch_size):,.0f}",
            ]
        )
    return rows


def test_tab1_workload_summary(benchmark, capsys):
    rows = benchmark(build_table)
    table = format_table(
        [
            "NN type",
            "name",
            "task",
            "batch",
            "model (MB)",
            "paper sample/s",
            "model sample/s",
        ],
        rows,
    )
    emit(capsys, "Table I — workload summary", table)
    for row in rows:
        paper = float(row[5].replace(",", ""))
        model = float(row[6].replace(",", ""))
        assert abs(paper - model) / paper < 0.01
