"""Figure 9: per-model latency decomposition on the baseline at scale.

Paper shape: data preparation accounts for 98.1% of per-batch latency on
average with 256 accelerators; formatting and augmentation dominate.
"""

from benchmarks._harness import TARGET_SCALE, emit
from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import build_demand
from repro.core.resources import latency_decomposition
from repro.core.server import build_server
from repro.workloads.registry import TABLE_I

ARCH = ArchitectureConfig.baseline()


def build_figure():
    rows = []
    fractions = []
    server = build_server(ARCH, TARGET_SCALE)
    for name, workload in TABLE_I.items():
        demand = build_demand(server, workload)
        result = simulate(
            TrainingScenario(workload, ARCH, TARGET_SCALE), server=server
        )
        decomp = latency_decomposition(
            server, demand, result.compute_time, result.sync_time,
            result.batch_size,
        )
        shares = decomp.shares()
        fractions.append(decomp.prep_fraction)
        rows.append(
            [name]
            + [
                f"{100 * shares[k]:.1f}%"
                for k in (
                    "data_transfer",
                    "data_formatting",
                    "data_augmentation",
                    "model_computation",
                    "model_synchronization",
                )
            ]
        )
    return rows, fractions


def test_fig09_latency_breakdown(benchmark, capsys):
    rows, fractions = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    table = format_table(
        ["model", "transfer", "formatting", "augmentation", "compute", "sync"],
        rows,
    )
    mean = 100 * sum(fractions) / len(fractions)
    emit(
        capsys,
        "Figure 9 — baseline latency decomposition at 256 accelerators",
        table + f"\n\nmean data-preparation share: {mean:.1f}% (paper: 98.1%)",
    )
    assert mean > 93.0
