"""Figure 2b: 4-KB-chunked ring synchronization latency vs accelerators.

Paper shape: latency normalized to the 2-accelerator case saturates at
the double — more accelerators do not mean higher synchronization cost.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_series
from repro.sync.model import RingSyncModel
from repro import units

COUNTS = (2, 4, 8, 16, 32, 64, 128, 256)
MODEL_BYTES = 100 * units.MB


def build_figure():
    model = RingSyncModel()
    return [model.normalized_latency(n, MODEL_BYTES) for n in COUNTS]


def test_fig02b_ring_saturation(benchmark, capsys):
    series = benchmark(build_figure)
    emit(
        capsys,
        "Figure 2b — ring sync latency normalized to 2 accelerators",
        format_series("normalized latency", COUNTS, series)
        + "\n\npaper: saturates at ~2.0x",
    )
    assert series[0] == 1.0
    assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
    assert 1.8 < series[-1] < 2.5
