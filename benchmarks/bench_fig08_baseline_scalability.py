"""Figure 8: throughput scalability of the baseline server.

Paper shape: normalized throughput saturates very early — no model
benefits beyond ~18 accelerators (Inception-v4 at 18.3, TF-SR at 4.4).
"""

from benchmarks._harness import SCALE_SWEEP, emit
from repro.analysis.tables import format_series
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.server import build_server_cached
from repro.workloads.registry import TABLE_I

ARCH = ArchitectureConfig.baseline()


def build_figure():
    # The same (arch, scale) server serves every workload in the sweep.
    curves = {}
    for name, workload in TABLE_I.items():
        one = simulate(
            TrainingScenario(workload, ARCH, 1),
            server=build_server_cached(ARCH, 1),
        ).throughput
        curves[name] = [
            simulate(
                TrainingScenario(workload, ARCH, n),
                server=build_server_cached(ARCH, n),
            ).throughput
            / one
            for n in SCALE_SWEEP
        ]
    return curves


def test_fig08_baseline_scalability(benchmark, capsys):
    curves = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    body = "\n".join(
        format_series(f"{name:15s}", SCALE_SWEEP, series)
        for name, series in curves.items()
    )
    emit(
        capsys,
        "Figure 8 — baseline normalized throughput vs #accelerators",
        body + "\n\npaper: every model saturates by ~18 accelerators",
    )
    for name, series in curves.items():
        assert series[-1] < 19.0, name            # saturation ceiling
        assert series[-1] <= series[-2] * 1.02    # flat tail
