"""Figure 8: throughput scalability of the baseline server.

Paper shape: normalized throughput saturates very early — no model
benefits beyond ~18 accelerators (Inception-v4 at 18.3, TF-SR at 4.4).
"""

from benchmarks._harness import SCALE_SWEEP, emit
from repro.analysis.tables import format_series
from repro.core.config import ArchitectureConfig
from repro.api import sweep as run_sweep
from repro.core.sweeps import SweepSpec
from repro.workloads.registry import TABLE_I

ARCH = ArchitectureConfig.baseline()


def build_figure():
    spec = SweepSpec(
        workloads=tuple(TABLE_I.values()),
        archs=(ARCH,),
        scales=SCALE_SWEEP,
    )
    outcome = run_sweep(spec)
    # The whole grid is analytical — the vectorized kernel must take it.
    assert outcome.batch_points == len(outcome.points)
    curves = {}
    for name in TABLE_I:
        series = outcome.curve(name, ARCH.name)
        one = series[0].throughput
        curves[name] = [r.throughput / one for r in series]
    return curves


def test_fig08_baseline_scalability(benchmark, capsys):
    curves = benchmark.pedantic(build_figure, rounds=1, iterations=1)
    body = "\n".join(
        format_series(f"{name:15s}", SCALE_SWEEP, series)
        for name, series in curves.items()
    )
    emit(
        capsys,
        "Figure 8 — baseline normalized throughput vs #accelerators",
        body + "\n\npaper: every model saturates by ~18 accelerators",
    )
    for name, series in curves.items():
        assert series[-1] < 19.0, name            # saturation ceiling
        assert series[-1] <= series[-2] * 1.02    # flat tail
