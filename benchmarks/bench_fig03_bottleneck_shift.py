"""Figure 3: latency decomposition of ResNet-50 across platform eras.

Current (8 Titan-XP-class GPUs, PCIe, central sync) → +HW accelerator
(256 TPU-class) → +ICN (NVLink-class fabric) → +Sync optimization
(ring).  Paper shape: data preparation goes from a hidden sliver to
54.9× the rest.
"""

import dataclasses

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, SyncStrategy
from repro.core.dataflow import build_demand
from repro.core.resources import latency_decomposition
from repro.core.server import build_server
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
BASE = ArchitectureConfig.baseline()
CENTRAL = dataclasses.replace(BASE, sync=SyncStrategy.CENTRAL)

#: (label, accelerator, n, arch, fabric bandwidth override)
PLATFORMS = [
    ("Current (8x legacy GPU)", "legacy-gpu", 8, CENTRAL, 16e9),
    ("+HW accelerator (256x TPU)", "tpu", 256, CENTRAL, 16e9),
    ("+ICN (NVLink-class)", "tpu", 256, CENTRAL, None),
    ("+Synch. optimization (ring)", "tpu", 256, BASE, None),
]


def build_figure():
    rows = []
    for label, accel, n, arch, fabric in PLATFORMS:
        server = build_server(arch, n)
        demand = build_demand(server, RESNET)
        result = simulate(
            TrainingScenario(
                RESNET, arch, n, accelerator=accel, fabric_bandwidth=fabric
            ),
            server=server,
        )
        decomp = latency_decomposition(
            server, demand, result.compute_time, result.sync_time,
            result.batch_size,
        )
        shares = decomp.shares()
        rows.append(
            [
                label,
                f"{100 * decomp.prep_fraction:.1f}%",
                f"{100 * shares['model_computation']:.1f}%",
                f"{100 * shares['model_synchronization']:.1f}%",
                f"{decomp.preparation / max(decomp.others, 1e-12):.1f}x",
            ]
        )
    return rows


def test_fig03_bottleneck_shift(benchmark, capsys):
    rows = benchmark(build_figure)
    table = format_table(
        ["platform", "data prep", "compute", "sync", "prep/others"], rows
    )
    emit(
        capsys,
        "Figure 3 — ResNet-50 latency decomposition across platforms",
        table + "\n\npaper: prep/others reaches 54.9x on the final platform",
    )
    prep_shares = [float(r[1].rstrip("%")) for r in rows]
    assert prep_shares == sorted(prep_shares)
    assert prep_shares[0] < 50
    assert float(rows[-1][4].rstrip("x")) > 10
