"""Figure 2a: performance trends of NN ASICs vs interconnects, 2012-2019.

Paper shape: ASIC efficiency improves by more than four orders of
magnitude while the interconnect improves by roughly one — the widening
gap that shifts the bottleneck to data preparation.
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.analysis.trends import asic_trend, interconnect_trend, trend_growth


def build_figure():
    rows = []
    inter = {year: (value, part) for year, value, part in interconnect_trend()}
    for year, value, part in asic_trend():
        ivalue, ipart = inter.get(year, (None, ""))
        rows.append(
            [
                year,
                f"{value:.1f}",
                part,
                f"{ivalue:.1f}" if ivalue else "-",
                ipart,
            ]
        )
    return rows


def test_fig02a_trends(benchmark, capsys):
    rows = benchmark(build_figure)
    table = format_table(
        ["year", "ASIC (norm.)", "part", "ICN (norm.)", "link"], rows
    )
    asic_x = trend_growth(asic_trend())
    icn_x = trend_growth(interconnect_trend())
    emit(
        capsys,
        "Figure 2a — hardware performance trends (normalized to 2012)",
        f"{table}\n\nASIC growth: {asic_x:,.0f}x   interconnect growth: "
        f"{icn_x:.1f}x  (paper: >10,000x vs ~10x)",
    )
    assert asic_x > 10_000
    assert icn_x < 100
