"""Tables II and III: FPGA resource utilization of the data preparation
accelerator (image and audio configurations on an XCVU9P).
"""

from benchmarks._harness import emit
from repro.analysis.tables import format_table
from repro.devices.fpga import audio_resource_model, image_resource_model


def build_tables():
    out = {}
    for label, model in (
        ("Table II (image)", image_resource_model()),
        ("Table III (audio)", audio_resource_model()),
    ):
        rows = []
        per_engine = model.engine_utilization()
        for engine in model.engines:
            util = per_engine[engine.name]
            rows.append(
                [
                    engine.name,
                    f"{engine.luts / 1000:.1f}K ({100 * util['luts']:.1f}%)",
                    f"{engine.ffs / 1000:.1f}K ({100 * util['ffs']:.1f}%)",
                    f"{engine.brams:.0f} ({100 * util['brams']:.1f}%)",
                    f"{engine.dsps:.0f} ({100 * util['dsps']:.1f}%)",
                ]
            )
        total = model.utilization()
        rows.append(
            ["Total"]
            + [f"{100 * total[k]:.1f}%" for k in ("luts", "ffs", "brams", "dsps")]
        )
        out[label] = rows
    return out


def test_tab2_tab3_fpga_resources(benchmark, capsys):
    tables = benchmark(build_tables)
    blocks = [
        label + "\n" + format_table(["engine", "LUTs", "FF", "BRAM", "DSP"], rows)
        for label, rows in tables.items()
    ]
    emit(
        capsys,
        "Tables II/III — FPGA resource utilization (XCVU9P)",
        "\n\n".join(blocks)
        + "\n\npaper totals: image 78.7/38.1/51.5/30.5%; audio 80.2/46.3/77.1/12.2%",
    )
    image_total = image_resource_model().utilization()
    audio_total = audio_resource_model().utilization()
    assert abs(image_total["luts"] - 0.787) < 0.01
    assert abs(audio_total["luts"] - 0.802) < 0.01
    # Both designs fit the part.
    image_resource_model().check_fits()
    audio_resource_model().check_fits()
